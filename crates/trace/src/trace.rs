//! The validated trace container.

use std::collections::HashMap;
use std::fmt;

use crate::error::TraceError;
use crate::event::{BlockId, TraceEvent};

/// A named, ordered sequence of allocation events.
///
/// A `Trace` built through [`Trace::from_events`] or grown through
/// [`Trace::push`] is always *well-formed*:
///
/// * every `Alloc` uses an id that is not currently live and a non-zero size;
/// * every `Free`/`Access` refers to a live id;
/// * ids may be reused after being freed (as real heap addresses are).
///
/// Blocks still live at the end of a trace are permitted: long-lived
/// application state (e.g. a decoder context) legitimately outlives the
/// profiled window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    events: Vec<TraceEvent>,
    /// Live map maintained incrementally: id -> size.
    live: HashMap<BlockId, u32>,
    peak_live_bytes: u64,
    live_bytes: u64,
}

impl Trace {
    /// An empty trace with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            events: Vec::new(),
            live: HashMap::new(),
            peak_live_bytes: 0,
            live_bytes: 0,
        }
    }

    /// Builds a trace from raw events, validating well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] encountered, with the offending
    /// event index.
    pub fn from_events(
        name: impl Into<String>,
        events: Vec<TraceEvent>,
    ) -> Result<Self, TraceError> {
        let mut t = Trace::new(name);
        for ev in events {
            t.push(ev)?;
        }
        Ok(t)
    }

    /// Appends one event, validating it against the current live set.
    ///
    /// # Errors
    ///
    /// [`TraceError::ZeroSizeAlloc`], [`TraceError::DuplicateAlloc`],
    /// [`TraceError::FreeOfDeadBlock`] or [`TraceError::AccessToDeadBlock`],
    /// each carrying the event index at which the violation occurred.
    pub fn push(&mut self, event: TraceEvent) -> Result<(), TraceError> {
        let at = self.events.len();
        match event {
            TraceEvent::Alloc { id, size, .. } => {
                if size == 0 {
                    return Err(TraceError::ZeroSizeAlloc { at, id });
                }
                if self.live.contains_key(&id) {
                    return Err(TraceError::DuplicateAlloc { at, id });
                }
                self.live.insert(id, size);
                self.live_bytes += u64::from(size);
                self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
            }
            TraceEvent::Free { id, .. } => match self.live.remove(&id) {
                Some(size) => self.live_bytes -= u64::from(size),
                None => return Err(TraceError::FreeOfDeadBlock { at, id }),
            },
            TraceEvent::Access { id, .. } => {
                if !self.live.contains_key(&id) {
                    return Err(TraceError::AccessToDeadBlock { at, id });
                }
            }
            TraceEvent::Tick { .. } => {}
        }
        self.events.push(event);
        Ok(())
    }

    /// The trace name (workload label used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Ids (with sizes) of blocks still live at the end of the trace.
    pub fn live_blocks(&self) -> impl Iterator<Item = (BlockId, u32)> + '_ {
        self.live.iter().map(|(id, size)| (*id, *size))
    }

    /// Bytes live at the end of the trace.
    pub fn final_live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Peak of the application's requested live bytes over the whole trace.
    ///
    /// This is the *lower bound* on any allocator's footprint: headers,
    /// alignment and fragmentation only add to it.
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace `{}`: {} events, peak live {} B",
            self.name,
            self.events.len(),
            self.peak_live_bytes
        )
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(id: u64, size: u32) -> TraceEvent {
        TraceEvent::alloc(BlockId(id), size)
    }
    fn free(id: u64) -> TraceEvent {
        TraceEvent::free(BlockId(id))
    }

    #[test]
    fn push_maintains_live_set_and_peak() {
        let mut t = Trace::new("t");
        t.push(alloc(1, 100)).unwrap();
        t.push(alloc(2, 50)).unwrap();
        t.push(free(1)).unwrap();
        t.push(alloc(3, 10)).unwrap();
        assert_eq!(t.peak_live_bytes(), 150);
        assert_eq!(t.final_live_bytes(), 60);
        let mut live: Vec<_> = t.live_blocks().collect();
        live.sort();
        assert_eq!(live, [(BlockId(2), 50), (BlockId(3), 10)]);
    }

    #[test]
    fn id_reuse_after_free_is_allowed() {
        let mut t = Trace::new("t");
        t.push(alloc(1, 8)).unwrap();
        t.push(free(1)).unwrap();
        t.push(alloc(1, 16)).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_alloc_rejected() {
        let mut t = Trace::new("t");
        t.push(alloc(1, 8)).unwrap();
        let err = t.push(alloc(1, 8)).unwrap_err();
        assert_eq!(
            err,
            TraceError::DuplicateAlloc {
                at: 1,
                id: BlockId(1)
            }
        );
    }

    #[test]
    fn free_of_dead_block_rejected() {
        let mut t = Trace::new("t");
        let err = t.push(free(9)).unwrap_err();
        assert_eq!(
            err,
            TraceError::FreeOfDeadBlock {
                at: 0,
                id: BlockId(9)
            }
        );
    }

    #[test]
    fn access_to_dead_block_rejected() {
        let mut t = Trace::new("t");
        let err = t.push(TraceEvent::access(BlockId(1), 1, 0)).unwrap_err();
        assert_eq!(
            err,
            TraceError::AccessToDeadBlock {
                at: 0,
                id: BlockId(1)
            }
        );
    }

    #[test]
    fn zero_size_alloc_rejected() {
        let mut t = Trace::new("t");
        let err = t.push(alloc(1, 0)).unwrap_err();
        assert_eq!(
            err,
            TraceError::ZeroSizeAlloc {
                at: 0,
                id: BlockId(1)
            }
        );
    }

    #[test]
    fn from_events_validates() {
        let ok = Trace::from_events("ok", vec![alloc(1, 4), free(1)]);
        assert!(ok.is_ok());
        let bad = Trace::from_events("bad", vec![free(1)]);
        assert!(bad.is_err());
    }

    #[test]
    fn ticks_do_not_affect_live_accounting() {
        let mut t = Trace::new("t");
        t.push(TraceEvent::tick(100)).unwrap();
        t.push(alloc(1, 8)).unwrap();
        t.push(TraceEvent::tick(100)).unwrap();
        assert_eq!(t.peak_live_bytes(), 8);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn display_and_intoiter() {
        let t = Trace::from_events("w", vec![alloc(1, 4)]).unwrap();
        assert!(t.to_string().contains("`w`"));
        assert_eq!((&t).into_iter().count(), 1);
    }
}
