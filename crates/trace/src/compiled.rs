//! The compiled, replay-optimized trace representation.
//!
//! A [`Trace`](crate::Trace) is the *validated* event stream: block ids
//! are arbitrary `u64`s (real applications reuse pointer values), so a
//! replayer must keep an id → block map — a hash lookup on every event.
//! A [`CompiledTrace`] is the same stream lowered into the form the
//! simulation kernel actually wants:
//!
//! * every block id is renamed to a **dense slot index** assigned by a
//!   free-slot stack, so the peak slot count equals the trace's maximum
//!   number of concurrently live blocks ([`Self::max_live_slots`]) and a
//!   replayer can use a flat slab instead of a hash map;
//! * events are fixed-width [`CompiledEvent`]s with the allocation size
//!   baked in — no side lookups during replay;
//! * per-allocation **lifetimes** (events between alloc and free) are
//!   precomputed for placement heuristics and diagnostics;
//! * the compile is one O(events) pass, done **once per workload** and
//!   shared between workers behind an `Arc` — workers never clone the
//!   event vector.
//!
//! Compiling is lossless for replay purposes: replaying a compiled trace
//! visits the same operations, in the same order, with the same sizes and
//! access counts as replaying the original trace.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::event::TraceEvent;
use crate::trace::Trace;

/// One lowered trace event. Slots are dense indices in
/// `0..max_live_slots`, recycled after the block's `Free` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompiledEvent {
    /// Allocate `size` bytes into `slot` (the slot is not live).
    Alloc {
        /// Dense slot index the block occupies while live.
        slot: u32,
        /// Requested size in bytes (non-zero).
        size: u32,
    },
    /// Free the block in `slot`.
    Free {
        /// Slot of the block being freed.
        slot: u32,
    },
    /// `reads`/`writes` application accesses to the block in `slot`.
    Access {
        /// Slot of the accessed block.
        slot: u32,
        /// Read accesses.
        reads: u32,
        /// Write accesses.
        writes: u32,
    },
    /// `cycles` of pure computation (no allocator activity).
    Tick {
        /// CPU cycles of computation.
        cycles: u32,
    },
}

/// A flat, replay-ready lowering of one workload trace.
///
/// Built once per workload with [`CompiledTrace::compile`] (or emitted
/// directly by a generator via
/// [`TraceGenerator::generate_compiled`](crate::gen::TraceGenerator::generate_compiled))
/// and shared across simulation workers as an [`Arc<CompiledTrace>`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    name: String,
    events: Vec<CompiledEvent>,
    max_live_slots: u32,
    /// Lifetime (in events, alloc → free) of each allocation, in
    /// allocation order; blocks live at trace end run to the last event.
    lifetimes: Vec<u32>,
    allocs: u64,
    frees: u64,
    peak_live_bytes: u64,
}

impl CompiledTrace {
    /// Lowers `trace` into the compiled form: one O(events) pass that
    /// renames ids to dense recycled slots and precomputes sizes,
    /// lifetimes and the peak live-slot count.
    pub fn compile(trace: &Trace) -> CompiledTrace {
        let mut events = Vec::with_capacity(trace.len());
        // id → (slot, alloc event index, alloc ordinal) for live blocks.
        let mut live: HashMap<u64, (u32, usize, usize)> = HashMap::new();
        let mut free_slots: Vec<u32> = Vec::new();
        let mut next_slot: u32 = 0;
        let mut lifetimes: Vec<u32> = Vec::new();
        let mut allocs = 0u64;
        let mut frees = 0u64;

        for (at, event) in trace.iter().enumerate() {
            match *event {
                TraceEvent::Alloc { id, size } => {
                    let slot = free_slots.pop().unwrap_or_else(|| {
                        let s = next_slot;
                        next_slot += 1;
                        s
                    });
                    live.insert(id.0, (slot, at, lifetimes.len()));
                    lifetimes.push(0);
                    allocs += 1;
                    events.push(CompiledEvent::Alloc { slot, size });
                }
                TraceEvent::Free { id } => {
                    let (slot, born, ordinal) =
                        live.remove(&id.0).expect("validated trace frees live ids");
                    lifetimes[ordinal] = (at - born) as u32;
                    free_slots.push(slot);
                    frees += 1;
                    events.push(CompiledEvent::Free { slot });
                }
                TraceEvent::Access { id, reads, writes } => {
                    let (slot, _, _) = live[&id.0];
                    events.push(CompiledEvent::Access {
                        slot,
                        reads,
                        writes,
                    });
                }
                TraceEvent::Tick { cycles } => {
                    events.push(CompiledEvent::Tick { cycles });
                }
            }
        }
        // Blocks alive at trace end: lifetime runs to the last event.
        let end = trace.len();
        for (_, (_, born, ordinal)) in live {
            lifetimes[ordinal] = (end - born) as u32;
        }

        CompiledTrace {
            name: trace.name().to_owned(),
            events,
            max_live_slots: next_slot,
            lifetimes,
            allocs,
            frees,
            peak_live_bytes: trace.peak_live_bytes(),
        }
    }

    /// Compiles and wraps in an [`Arc`] in one step (the shape every
    /// multi-worker consumer wants).
    pub fn compile_shared(trace: &Trace) -> Arc<CompiledTrace> {
        Arc::new(CompiledTrace::compile(trace))
    }

    /// The workload name, carried over from the source trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lowered events in replay order.
    pub fn events(&self) -> &[CompiledEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The maximum number of concurrently live blocks — the exact slab
    /// size a replayer needs.
    pub fn max_live_slots(&self) -> u32 {
        self.max_live_slots
    }

    /// Per-allocation lifetimes in events (alloc → free, or alloc → end
    /// of trace for blocks never freed), in allocation order.
    pub fn lifetimes(&self) -> &[u32] {
        &self.lifetimes
    }

    /// Total allocations in the trace.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total frees in the trace.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Peak of the application's requested live bytes (carried over from
    /// the source trace — the lower bound on any allocator's footprint).
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }
}

impl fmt::Display for CompiledTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiled trace `{}`: {} events, {} slots",
            self.name,
            self.events.len(),
            self.max_live_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BlockId;
    use crate::gen::{ramp, EasyportConfig, TraceGenerator};

    fn alloc(id: u64, size: u32) -> TraceEvent {
        TraceEvent::Alloc {
            id: BlockId(id),
            size,
        }
    }
    fn free(id: u64) -> TraceEvent {
        TraceEvent::Free { id: BlockId(id) }
    }

    #[test]
    fn slots_are_dense_and_recycled() {
        // 1 and 2 overlap; 3 starts after 1 dies and reuses its slot.
        let t = Trace::from_events(
            "t",
            vec![alloc(10, 8), alloc(20, 8), free(10), alloc(30, 8)],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.max_live_slots(), 2, "peak concurrency is 2");
        assert_eq!(
            c.events(),
            [
                CompiledEvent::Alloc { slot: 0, size: 8 },
                CompiledEvent::Alloc { slot: 1, size: 8 },
                CompiledEvent::Free { slot: 0 },
                CompiledEvent::Alloc { slot: 0, size: 8 },
            ]
        );
    }

    #[test]
    fn lifetimes_cover_freed_and_leaked_blocks() {
        let t = Trace::from_events(
            "t",
            vec![
                alloc(1, 8),
                TraceEvent::Tick { cycles: 5 },
                free(1),
                alloc(2, 8),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.lifetimes(), [2, 1], "freed at +2; leaked runs to end");
        assert_eq!(c.allocs(), 2);
        assert_eq!(c.frees(), 1);
    }

    #[test]
    fn compile_preserves_event_semantics() {
        let t = Trace::from_events(
            "t",
            vec![
                alloc(7, 100),
                TraceEvent::Access {
                    id: BlockId(7),
                    reads: 3,
                    writes: 2,
                },
                TraceEvent::Tick { cycles: 11 },
                free(7),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.len(), t.len());
        assert_eq!(
            c.events()[1],
            CompiledEvent::Access {
                slot: 0,
                reads: 3,
                writes: 2
            }
        );
        assert_eq!(c.events()[2], CompiledEvent::Tick { cycles: 11 });
        assert_eq!(c.peak_live_bytes(), t.peak_live_bytes());
        assert_eq!(c.name(), "t");
    }

    #[test]
    fn generated_traces_compile_consistently() {
        let t = EasyportConfig::small().generate(5);
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.len(), t.len());
        let stats = crate::TraceStats::compute(&t);
        assert_eq!(u64::from(c.max_live_slots()), stats.peak_live_blocks);
        assert_eq!(c.allocs(), stats.allocs);
        assert_eq!(c.frees(), stats.frees);
        assert_eq!(c.lifetimes().len() as u64, c.allocs());
        // Replaying the compiled events with a slab must mirror the live
        // set of the original trace: no slot is double-occupied.
        let mut occupied = vec![false; c.max_live_slots() as usize];
        for e in c.events() {
            match *e {
                CompiledEvent::Alloc { slot, .. } => {
                    assert!(!occupied[slot as usize], "slot reused while live");
                    occupied[slot as usize] = true;
                }
                CompiledEvent::Free { slot } => {
                    assert!(occupied[slot as usize], "free of an empty slot");
                    occupied[slot as usize] = false;
                }
                CompiledEvent::Access { slot, .. } => {
                    assert!(occupied[slot as usize], "access to an empty slot");
                }
                CompiledEvent::Tick { .. } => {}
            }
        }
    }

    #[test]
    fn compile_shared_and_display() {
        let c = CompiledTrace::compile_shared(&ramp(10, 16));
        assert_eq!(Arc::strong_count(&c), 1);
        assert!(c.to_string().contains("compiled trace"));
        assert!(!c.is_empty());
    }
}
