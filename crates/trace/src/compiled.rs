//! The compiled, replay-optimized trace representation.
//!
//! A [`Trace`](crate::Trace) is the *validated* event stream: block ids
//! are arbitrary `u64`s (real applications reuse pointer values), so a
//! replayer must keep an id → block map — a hash lookup on every event.
//! A [`CompiledTrace`] is the same stream lowered into the form the
//! simulation kernel actually wants, as **structure-of-arrays** event
//! streams:
//!
//! * every block id is renamed to a **dense slot index** assigned by a
//!   free-slot stack, so the peak slot count equals the trace's maximum
//!   number of concurrently live blocks ([`Self::max_live_slots`]) and a
//!   replayer can use a flat slab instead of a hash map;
//! * events are stored as parallel dense arrays — opcodes, slots and
//!   arguments — instead of an array of enum structs, so a replay pass
//!   streams each component sequentially ([`Self::iter_events`] zips
//!   them back into [`CompiledEvent`]s for the single-genome kernel);
//! * a second, shorter stream carries **only the allocator-visible
//!   operations** ([`Self::pool_ops`]: allocs and frees) with the work
//!   that does not depend on allocator state hoisted out of replay
//!   entirely: per-allocation sizes ([`Self::alloc_sizes`]), lifetime
//!   application-access totals ([`Self::alloc_reads`] /
//!   [`Self::alloc_writes`] — applied once at placement time, since
//!   access charging is a pure per-level sum) and the trace's total
//!   compute ticks ([`Self::total_tick_cycles`]). This is what the
//!   batch kernel replays: K genomes advance through one sequential
//!   pass over these arrays;
//! * per-allocation **lifetimes** (events between alloc and free) are
//!   precomputed for placement heuristics and diagnostics;
//! * the compile is one O(events) pass, done **once per workload** and
//!   shared between workers behind an `Arc` — workers never clone the
//!   event streams.
//!
//! Compiling is lossless for replay purposes: replaying a compiled trace
//! visits the same operations, in the same order, with the same sizes and
//! access counts as replaying the original trace — and replaying only the
//! pool-op stream produces byte-identical metrics, because access and
//! tick charges are additive (order never affects the totals the cost
//! model consumes).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use crate::error::CompileError;
use crate::event::TraceEvent;
use crate::trace::Trace;

/// One lowered trace event. Slots are dense indices in
/// `0..max_live_slots`, recycled after the block's `Free` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompiledEvent {
    /// Allocate `size` bytes into `slot` (the slot is not live).
    Alloc {
        /// Dense slot index the block occupies while live.
        slot: u32,
        /// Requested size in bytes (non-zero).
        size: u32,
    },
    /// Free the block in `slot`.
    Free {
        /// Slot of the block being freed.
        slot: u32,
    },
    /// `reads`/`writes` application accesses to the block in `slot`.
    Access {
        /// Slot of the accessed block.
        slot: u32,
        /// Read accesses.
        reads: u32,
        /// Write accesses.
        writes: u32,
    },
    /// `cycles` of pure computation (no allocator activity).
    Tick {
        /// CPU cycles of computation.
        cycles: u32,
    },
}

/// Opcode stream entry of the full SoA lowering (one per source event).
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCode {
    /// Allocate into the event's slot; the argument is the size.
    Alloc = 0,
    /// Free the event's slot.
    Free = 1,
    /// Application accesses; arguments are reads and writes.
    Access = 2,
    /// Pure computation; the argument is the cycle count.
    Tick = 3,
}

/// One entry of the allocator-op stream: a slot index with the free bit
/// in the top bit. Allocs appear in allocation order, so the n-th alloc
/// op indexes [`CompiledTrace::alloc_sizes`] (and the hoisted access
/// totals) with a running counter — no per-op side lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolOp(u32);

impl PoolOp {
    const FREE_BIT: u32 = 1 << 31;

    /// An allocation into `slot`.
    fn alloc(slot: u32) -> Self {
        PoolOp(slot)
    }

    /// A free of `slot`.
    fn free(slot: u32) -> Self {
        PoolOp(slot | Self::FREE_BIT)
    }

    /// `true` for a free, `false` for an alloc.
    #[inline]
    pub fn is_free(self) -> bool {
        self.0 & Self::FREE_BIT != 0
    }

    /// The slot the op targets.
    #[inline]
    pub fn slot(self) -> u32 {
        self.0 & !Self::FREE_BIT
    }
}

/// Number of distinct thread ids in a pool-op tid stream.
fn distinct_tids(op_tids: &[u32]) -> u32 {
    op_tids.iter().collect::<HashSet<_>>().len() as u32
}

/// A flat, replay-ready SoA lowering of one workload trace.
///
/// Built once per workload with [`CompiledTrace::compile`] (or emitted
/// directly by a generator via
/// [`TraceGenerator::generate_compiled`](crate::gen::TraceGenerator::generate_compiled))
/// and shared across simulation workers as an [`Arc<CompiledTrace>`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    name: String,
    /// Full event stream, SoA: opcode per event…
    kinds: Vec<OpCode>,
    /// …slot per event (0 for ticks)…
    slots: Vec<u32>,
    /// …first argument (alloc size / access reads / tick cycles)…
    args: Vec<u32>,
    /// …second argument (access writes; 0 otherwise)…
    args2: Vec<u32>,
    /// …issuing thread per event (0 for ticks).
    tids: Vec<u32>,
    /// Allocator-op stream: allocs and frees only, in event order.
    pool_ops: Vec<PoolOp>,
    /// Issuing thread of each pool op, parallel to [`Self::pool_ops`] —
    /// what the contention model consumes.
    op_tids: Vec<u32>,
    /// Number of distinct thread ids over the pool-op stream. 1 (or 0
    /// for op-free traces) means single-threaded: the kernels skip
    /// contention bookkeeping entirely.
    distinct_op_tids: u32,
    /// Requested size of each allocation, in allocation order.
    alloc_sizes: Vec<u32>,
    /// Lifetime application reads of each allocation, in allocation
    /// order (hoisted out of the event stream for the batch kernel).
    alloc_reads: Vec<u64>,
    /// Lifetime application writes, in allocation order.
    alloc_writes: Vec<u64>,
    /// Sum of all `Tick` cycles (allocator-independent, charged once).
    total_tick_cycles: u64,
    max_live_slots: u32,
    /// Lifetime (in events, alloc → free) of each allocation, in
    /// allocation order; blocks live at trace end run to the last event.
    lifetimes: Vec<u32>,
    allocs: u64,
    frees: u64,
    peak_live_bytes: u64,
}

impl CompiledTrace {
    /// Lowers `trace` into the compiled form: one O(events) pass that
    /// renames ids to dense recycled slots, splits the stream into SoA
    /// arrays, and precomputes sizes, lifetimes, per-allocation access
    /// totals, total tick cycles and the peak live-slot count.
    pub fn compile(trace: &Trace) -> CompiledTrace {
        let len = trace.len();
        let mut kinds = Vec::with_capacity(len);
        let mut slots = Vec::with_capacity(len);
        let mut args = Vec::with_capacity(len);
        let mut args2 = Vec::with_capacity(len);
        let mut tids = Vec::with_capacity(len);
        let mut pool_ops = Vec::new();
        let mut op_tids = Vec::new();
        let mut alloc_sizes = Vec::new();
        let mut alloc_reads: Vec<u64> = Vec::new();
        let mut alloc_writes: Vec<u64> = Vec::new();
        let mut total_tick_cycles = 0u64;
        // id → (slot, alloc event index, alloc ordinal) for live blocks.
        let mut live: HashMap<u64, (u32, usize, usize)> = HashMap::new();
        let mut free_slots: Vec<u32> = Vec::new();
        let mut next_slot: u32 = 0;
        let mut lifetimes: Vec<u32> = Vec::new();
        let mut allocs = 0u64;
        let mut frees = 0u64;

        for (at, event) in trace.iter().enumerate() {
            match *event {
                TraceEvent::Alloc { id, size, tid } => {
                    let slot = free_slots.pop().unwrap_or_else(|| {
                        let s = next_slot;
                        next_slot += 1;
                        assert!(s < PoolOp::FREE_BIT, "slot index overflows the op encoding");
                        s
                    });
                    live.insert(id.0, (slot, at, lifetimes.len()));
                    lifetimes.push(0);
                    alloc_sizes.push(size);
                    alloc_reads.push(0);
                    alloc_writes.push(0);
                    allocs += 1;
                    kinds.push(OpCode::Alloc);
                    slots.push(slot);
                    args.push(size);
                    args2.push(0);
                    tids.push(tid.0);
                    pool_ops.push(PoolOp::alloc(slot));
                    op_tids.push(tid.0);
                }
                TraceEvent::Free { id, tid } => {
                    let (slot, born, ordinal) =
                        live.remove(&id.0).expect("validated trace frees live ids");
                    lifetimes[ordinal] = (at - born) as u32;
                    free_slots.push(slot);
                    frees += 1;
                    kinds.push(OpCode::Free);
                    slots.push(slot);
                    args.push(0);
                    args2.push(0);
                    tids.push(tid.0);
                    pool_ops.push(PoolOp::free(slot));
                    op_tids.push(tid.0);
                }
                TraceEvent::Access {
                    id,
                    reads,
                    writes,
                    tid,
                } => {
                    let (slot, _, ordinal) = live[&id.0];
                    alloc_reads[ordinal] += u64::from(reads);
                    alloc_writes[ordinal] += u64::from(writes);
                    kinds.push(OpCode::Access);
                    slots.push(slot);
                    args.push(reads);
                    args2.push(writes);
                    tids.push(tid.0);
                }
                TraceEvent::Tick { cycles } => {
                    total_tick_cycles += u64::from(cycles);
                    kinds.push(OpCode::Tick);
                    slots.push(0);
                    args.push(cycles);
                    args2.push(0);
                    tids.push(0);
                }
            }
        }
        // Blocks alive at trace end: lifetime runs to the last event.
        let end = trace.len();
        for (_, (_, born, ordinal)) in live {
            lifetimes[ordinal] = (end - born) as u32;
        }

        let distinct_op_tids = distinct_tids(&op_tids);
        CompiledTrace {
            name: trace.name().to_owned(),
            kinds,
            slots,
            args,
            args2,
            tids,
            pool_ops,
            op_tids,
            distinct_op_tids,
            alloc_sizes,
            alloc_reads,
            alloc_writes,
            total_tick_cycles,
            max_live_slots: next_slot,
            lifetimes,
            allocs,
            frees,
            peak_live_bytes: trace.peak_live_bytes(),
        }
    }

    /// Compiles and wraps in an [`Arc`] in one step (the shape every
    /// multi-worker consumer wants).
    pub fn compile_shared(trace: &Trace) -> Arc<CompiledTrace> {
        Arc::new(CompiledTrace::compile(trace))
    }

    /// A replayable prefix of this trace: the first
    /// `ceil(fraction × len)` events, re-lowered as a standalone
    /// [`CompiledTrace`] that every replay kernel accepts unchanged —
    /// the low-fidelity rungs of a multi-fidelity search screen
    /// candidates on these.
    ///
    /// The SoA event streams are a plain cut, but the hoisted
    /// per-allocation data is rebuilt over the window: access totals are
    /// re-accumulated from in-window `Access` events only (a lifetime
    /// total would charge accesses that happen after the cut), lifetimes
    /// of blocks still live at the cut run to the window end, and the
    /// tick/peak/slot summaries are recomputed. Because the dense-slot
    /// assignment of a compile depends only on the event prefix already
    /// consumed, the result is **identical** to compiling the truncated
    /// source trace; `prefix(1.0)` returns a clone of `self`.
    ///
    /// # Errors
    ///
    /// [`CompileError::PrefixFractionOutOfRange`] unless
    /// `0 < fraction <= 1` (NaN included), so a malformed fidelity rung
    /// surfaces as a typed error instead of aborting the run.
    pub fn prefix(&self, fraction: f64) -> Result<CompiledTrace, CompileError> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(CompileError::PrefixFractionOutOfRange { fraction });
        }
        let len = self.kinds.len();
        let cut = ((len as f64 * fraction).ceil() as usize).min(len);
        if cut == len {
            return Ok(self.clone());
        }

        let mut pool_ops = Vec::new();
        let mut op_tids = Vec::new();
        let mut alloc_sizes = Vec::new();
        let mut alloc_reads: Vec<u64> = Vec::new();
        let mut alloc_writes: Vec<u64> = Vec::new();
        let mut lifetimes: Vec<u32> = Vec::new();
        let mut total_tick_cycles = 0u64;
        let mut allocs = 0u64;
        let mut frees = 0u64;
        // slot → (alloc ordinal, alloc event index) for in-window live
        // blocks. Slots are already dense, so a flat table replaces the
        // id map that `compile` needs.
        let mut owner: Vec<(usize, usize)> = vec![(usize::MAX, 0); self.max_live_slots as usize];
        let mut live_bytes = 0u64;
        let mut peak_live_bytes = 0u64;
        let mut max_live_slots = 0u32;

        for at in 0..cut {
            let slot = self.slots[at];
            match self.kinds[at] {
                OpCode::Alloc => {
                    let size = self.args[at];
                    owner[slot as usize] = (alloc_sizes.len(), at);
                    alloc_sizes.push(size);
                    alloc_reads.push(0);
                    alloc_writes.push(0);
                    lifetimes.push(0);
                    allocs += 1;
                    pool_ops.push(PoolOp::alloc(slot));
                    op_tids.push(self.tids[at]);
                    live_bytes += u64::from(size);
                    peak_live_bytes = peak_live_bytes.max(live_bytes);
                    // The free-slot stack hands out the same slots for
                    // the same event prefix, so the window's peak slab
                    // is the highest slot an in-window alloc touches.
                    max_live_slots = max_live_slots.max(slot + 1);
                }
                OpCode::Free => {
                    let (ordinal, born) = owner[slot as usize];
                    lifetimes[ordinal] = (at - born) as u32;
                    owner[slot as usize] = (usize::MAX, 0);
                    frees += 1;
                    pool_ops.push(PoolOp::free(slot));
                    op_tids.push(self.tids[at]);
                    live_bytes -= u64::from(alloc_sizes[ordinal]);
                }
                OpCode::Access => {
                    let (ordinal, _) = owner[slot as usize];
                    alloc_reads[ordinal] += u64::from(self.args[at]);
                    alloc_writes[ordinal] += u64::from(self.args2[at]);
                }
                OpCode::Tick => total_tick_cycles += u64::from(self.args[at]),
            }
        }
        // Blocks whose lifetime crosses the cut run to the window end.
        for &(ordinal, born) in &owner {
            if ordinal != usize::MAX {
                lifetimes[ordinal] = (cut - born) as u32;
            }
        }

        let distinct_op_tids = distinct_tids(&op_tids);
        Ok(CompiledTrace {
            name: self.name.clone(),
            kinds: self.kinds[..cut].to_vec(),
            slots: self.slots[..cut].to_vec(),
            args: self.args[..cut].to_vec(),
            args2: self.args2[..cut].to_vec(),
            tids: self.tids[..cut].to_vec(),
            pool_ops,
            op_tids,
            distinct_op_tids,
            alloc_sizes,
            alloc_reads,
            alloc_writes,
            total_tick_cycles,
            max_live_slots,
            lifetimes,
            allocs,
            frees,
            peak_live_bytes,
        })
    }

    /// The workload name, carried over from the source trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lowered events in replay order, zipped back out of the SoA
    /// streams (the view the single-genome kernel and the tests consume).
    pub fn iter_events(&self) -> impl Iterator<Item = CompiledEvent> + '_ {
        self.kinds
            .iter()
            .zip(&self.slots)
            .zip(&self.args)
            .zip(&self.args2)
            .map(|(((&kind, &slot), &arg), &arg2)| match kind {
                OpCode::Alloc => CompiledEvent::Alloc { slot, size: arg },
                OpCode::Free => CompiledEvent::Free { slot },
                OpCode::Access => CompiledEvent::Access {
                    slot,
                    reads: arg,
                    writes: arg2,
                },
                OpCode::Tick => CompiledEvent::Tick { cycles: arg },
            })
    }

    /// The event at stream position `i` (see [`Self::iter_events`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn event_at(&self, i: usize) -> CompiledEvent {
        match self.kinds[i] {
            OpCode::Alloc => CompiledEvent::Alloc {
                slot: self.slots[i],
                size: self.args[i],
            },
            OpCode::Free => CompiledEvent::Free {
                slot: self.slots[i],
            },
            OpCode::Access => CompiledEvent::Access {
                slot: self.slots[i],
                reads: self.args[i],
                writes: self.args2[i],
            },
            OpCode::Tick => CompiledEvent::Tick {
                cycles: self.args[i],
            },
        }
    }

    /// The allocator-op stream (allocs and frees only, in event order) —
    /// what the batch kernel replays. Access and tick work is hoisted
    /// into [`Self::alloc_reads`] / [`Self::alloc_writes`] /
    /// [`Self::total_tick_cycles`].
    pub fn pool_ops(&self) -> &[PoolOp] {
        &self.pool_ops
    }

    /// Issuing thread of each event, parallel to the full event stream
    /// (0 for ticks, which are thread-agnostic).
    pub fn tids(&self) -> &[u32] {
        &self.tids
    }

    /// Issuing thread of each pool op, parallel to [`Self::pool_ops`] —
    /// the stream the contention model consumes.
    pub fn op_tids(&self) -> &[u32] {
        &self.op_tids
    }

    /// Number of distinct thread ids over the pool-op stream.
    pub fn distinct_op_tids(&self) -> u32 {
        self.distinct_op_tids
    }

    /// `true` when more than one thread issues allocator operations —
    /// the gate for all contention bookkeeping (single-threaded replays
    /// take the original hot path and charge zero contention).
    pub fn is_threaded(&self) -> bool {
        self.distinct_op_tids > 1
    }

    /// Requested size of the n-th allocation (allocation order, aligned
    /// with the alloc entries of [`Self::pool_ops`]).
    pub fn alloc_sizes(&self) -> &[u32] {
        &self.alloc_sizes
    }

    /// Lifetime application reads of the n-th allocation. Charging these
    /// once at placement time is metric-identical to charging each
    /// `Access` event: access counts are pure per-level sums.
    pub fn alloc_reads(&self) -> &[u64] {
        &self.alloc_reads
    }

    /// Lifetime application writes of the n-th allocation.
    pub fn alloc_writes(&self) -> &[u64] {
        &self.alloc_writes
    }

    /// Total `Tick` cycles in the trace — allocator-independent, so the
    /// batch kernel charges them once per run instead of per event.
    pub fn total_tick_cycles(&self) -> u64 {
        self.total_tick_cycles
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` if the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The maximum number of concurrently live blocks — the exact slab
    /// size a replayer needs.
    pub fn max_live_slots(&self) -> u32 {
        self.max_live_slots
    }

    /// Per-allocation lifetimes in events (alloc → free, or alloc → end
    /// of trace for blocks never freed), in allocation order.
    pub fn lifetimes(&self) -> &[u32] {
        &self.lifetimes
    }

    /// Total allocations in the trace.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total frees in the trace.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Peak of the application's requested live bytes (carried over from
    /// the source trace — the lower bound on any allocator's footprint).
    pub fn peak_live_bytes(&self) -> u64 {
        self.peak_live_bytes
    }
}

impl fmt::Display for CompiledTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compiled trace `{}`: {} events ({} pool ops), {} slots",
            self.name,
            self.kinds.len(),
            self.pool_ops.len(),
            self.max_live_slots
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BlockId;
    use crate::gen::{ramp, EasyportConfig, TraceGenerator};

    fn alloc(id: u64, size: u32) -> TraceEvent {
        TraceEvent::alloc(BlockId(id), size)
    }
    fn free(id: u64) -> TraceEvent {
        TraceEvent::free(BlockId(id))
    }

    #[test]
    fn slots_are_dense_and_recycled() {
        // 1 and 2 overlap; 3 starts after 1 dies and reuses its slot.
        let t = Trace::from_events(
            "t",
            vec![alloc(10, 8), alloc(20, 8), free(10), alloc(30, 8)],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.max_live_slots(), 2, "peak concurrency is 2");
        assert_eq!(
            c.iter_events().collect::<Vec<_>>(),
            [
                CompiledEvent::Alloc { slot: 0, size: 8 },
                CompiledEvent::Alloc { slot: 1, size: 8 },
                CompiledEvent::Free { slot: 0 },
                CompiledEvent::Alloc { slot: 0, size: 8 },
            ]
        );
    }

    #[test]
    fn lifetimes_cover_freed_and_leaked_blocks() {
        let t = Trace::from_events(
            "t",
            vec![alloc(1, 8), TraceEvent::tick(5), free(1), alloc(2, 8)],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.lifetimes(), [2, 1], "freed at +2; leaked runs to end");
        assert_eq!(c.allocs(), 2);
        assert_eq!(c.frees(), 1);
        assert_eq!(c.total_tick_cycles(), 5);
    }

    #[test]
    fn compile_preserves_event_semantics() {
        let t = Trace::from_events(
            "t",
            vec![
                alloc(7, 100),
                TraceEvent::access(BlockId(7), 3, 2),
                TraceEvent::tick(11),
                free(7),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.len(), t.len());
        assert_eq!(
            c.event_at(1),
            CompiledEvent::Access {
                slot: 0,
                reads: 3,
                writes: 2
            }
        );
        assert_eq!(c.event_at(2), CompiledEvent::Tick { cycles: 11 });
        assert_eq!(c.peak_live_bytes(), t.peak_live_bytes());
        assert_eq!(c.name(), "t");
    }

    #[test]
    fn pool_op_stream_hoists_accesses_and_ticks() {
        let t = Trace::from_events(
            "t",
            vec![
                alloc(1, 64),
                TraceEvent::access(BlockId(1), 3, 2),
                alloc(2, 128),
                TraceEvent::tick(9),
                TraceEvent::access(BlockId(1), 4, 0),
                free(1),
                TraceEvent::access(BlockId(2), 1, 1),
                TraceEvent::tick(2),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        // The op stream carries only the three allocator-visible events.
        let ops = c.pool_ops();
        assert_eq!(ops.len(), 3);
        assert!(!ops[0].is_free() && ops[0].slot() == 0);
        assert!(!ops[1].is_free() && ops[1].slot() == 1);
        assert!(ops[2].is_free() && ops[2].slot() == 0);
        // Sizes in allocation order; access totals folded per allocation.
        assert_eq!(c.alloc_sizes(), [64, 128]);
        assert_eq!(c.alloc_reads(), [7, 1], "3+4 reads on #1, 1 on leaked #2");
        assert_eq!(c.alloc_writes(), [2, 1]);
        assert_eq!(c.total_tick_cycles(), 11);
    }

    #[test]
    fn generated_traces_compile_consistently() {
        let t = EasyportConfig::small().generate(5);
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.len(), t.len());
        let stats = crate::TraceStats::compute(&t);
        assert_eq!(u64::from(c.max_live_slots()), stats.peak_live_blocks);
        assert_eq!(c.allocs(), stats.allocs);
        assert_eq!(c.frees(), stats.frees);
        assert_eq!(c.lifetimes().len() as u64, c.allocs());
        assert_eq!(c.alloc_sizes().len() as u64, c.allocs());
        assert_eq!(c.pool_ops().len() as u64, c.allocs() + c.frees());
        // The hoisted totals must cover exactly the stream's accesses
        // and ticks.
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut ticks = 0u64;
        for e in c.iter_events() {
            match e {
                CompiledEvent::Access {
                    reads: r,
                    writes: w,
                    ..
                } => {
                    reads += u64::from(r);
                    writes += u64::from(w);
                }
                CompiledEvent::Tick { cycles } => ticks += u64::from(cycles),
                _ => {}
            }
        }
        assert_eq!(c.alloc_reads().iter().sum::<u64>(), reads);
        assert_eq!(c.alloc_writes().iter().sum::<u64>(), writes);
        assert_eq!(c.total_tick_cycles(), ticks);
        // Replaying the compiled events with a slab must mirror the live
        // set of the original trace: no slot is double-occupied.
        let mut occupied = vec![false; c.max_live_slots() as usize];
        for e in c.iter_events() {
            match e {
                CompiledEvent::Alloc { slot, .. } => {
                    assert!(!occupied[slot as usize], "slot reused while live");
                    occupied[slot as usize] = true;
                }
                CompiledEvent::Free { slot } => {
                    assert!(occupied[slot as usize], "free of an empty slot");
                    occupied[slot as usize] = false;
                }
                CompiledEvent::Access { slot, .. } => {
                    assert!(occupied[slot as usize], "access to an empty slot");
                }
                CompiledEvent::Tick { .. } => {}
            }
        }
        // The pool-op stream is the same sequence with accesses/ticks
        // dropped.
        let pool_view: Vec<PoolOp> = c
            .iter_events()
            .filter_map(|e| match e {
                CompiledEvent::Alloc { slot, .. } => Some(PoolOp::alloc(slot)),
                CompiledEvent::Free { slot } => Some(PoolOp::free(slot)),
                _ => None,
            })
            .collect();
        assert_eq!(c.pool_ops(), pool_view);
    }

    #[test]
    fn compile_shared_and_display() {
        let c = CompiledTrace::compile_shared(&ramp(10, 16));
        assert_eq!(Arc::strong_count(&c), 1);
        assert!(c.to_string().contains("compiled trace"));
        assert!(!c.is_empty());
    }

    #[test]
    fn prefix_of_full_fraction_is_identical() {
        let t = EasyportConfig::small().generate(7);
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.prefix(1.0).unwrap(), c);
    }

    #[test]
    fn prefix_equals_compile_of_truncated_trace() {
        let t = EasyportConfig::small().generate(5);
        let c = CompiledTrace::compile(&t);
        for fraction in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let cut = ((t.len() as f64 * fraction).ceil() as usize).min(t.len());
            let truncated =
                Trace::from_events(t.name(), t.events()[..cut].to_vec()).expect("valid prefix");
            assert_eq!(
                c.prefix(fraction).unwrap(),
                CompiledTrace::compile(&truncated),
                "fraction {fraction}: prefix view must equal a fresh compile of the \
                 truncated source trace"
            );
        }
    }

    #[test]
    fn prefix_adjusts_hoisted_totals_at_the_cut() {
        // Block 1 lives across the cut: only its in-window accesses may
        // be charged, and its lifetime must end at the window.
        let t = Trace::from_events(
            "t",
            vec![
                alloc(1, 64),
                TraceEvent::access(BlockId(1), 3, 2),
                TraceEvent::tick(9),
                TraceEvent::access(BlockId(1), 40, 50),
                free(1),
                TraceEvent::tick(100),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        let p = c.prefix(0.5).unwrap(); // first 3 of 6 events
        assert_eq!(p.len(), 3);
        assert_eq!(
            p.alloc_reads(),
            [3],
            "post-cut accesses must not be charged"
        );
        assert_eq!(p.alloc_writes(), [2]);
        assert_eq!(p.total_tick_cycles(), 9);
        assert_eq!(
            p.lifetimes(),
            [3],
            "live-at-cut lifetime runs to the window end"
        );
        assert_eq!(p.allocs(), 1);
        assert_eq!(p.frees(), 0);
        assert_eq!(p.pool_ops().len(), 1);
        assert_eq!(p.peak_live_bytes(), 64);
        assert_eq!(p.name(), c.name());
    }

    #[test]
    fn prefix_rejects_out_of_range_fractions() {
        use crate::error::CompileError;
        let c = CompiledTrace::compile(&ramp(4, 16));
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            match c.prefix(bad) {
                Err(CompileError::PrefixFractionOutOfRange { fraction }) => {
                    assert!(fraction.is_nan() == bad.is_nan() || fraction == bad);
                }
                other => panic!("prefix({bad}) should fail, got {other:?}"),
            }
        }
    }

    #[test]
    fn tid_lowering_preserves_thread_identity() {
        use crate::event::ThreadId;
        // Producer thread 1 allocates, consumer thread 2 frees; a tick
        // separates them. Pool-op tids must follow the event tids.
        let t = Trace::from_events(
            "t",
            vec![
                TraceEvent::alloc_on(ThreadId(1), BlockId(1), 64),
                TraceEvent::access_on(ThreadId(2), BlockId(1), 3, 1),
                TraceEvent::tick(9),
                TraceEvent::free_on(ThreadId(2), BlockId(1)),
            ],
        )
        .unwrap();
        let c = CompiledTrace::compile(&t);
        assert_eq!(c.tids(), [1, 2, 0, 2]);
        assert_eq!(c.op_tids(), [1, 2]);
        assert_eq!(c.distinct_op_tids(), 2);
        assert!(c.is_threaded());
        // Single-threaded traces gate contention off.
        let s = CompiledTrace::compile(&ramp(4, 16));
        assert_eq!(s.distinct_op_tids(), 1);
        assert!(!s.is_threaded());
    }

    #[test]
    fn prefix_rederives_op_tids() {
        use crate::event::ThreadId;
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(TraceEvent::alloc_on(
                ThreadId((i % 3) as u32),
                BlockId(i),
                32,
            ));
        }
        for i in 0..10u64 {
            events.push(TraceEvent::free_on(
                ThreadId(((i + 1) % 3) as u32),
                BlockId(i),
            ));
        }
        let t = Trace::from_events("t", events).unwrap();
        let c = CompiledTrace::compile(&t);
        for fraction in [0.2, 0.5, 0.8] {
            let cut = ((t.len() as f64 * fraction).ceil() as usize).min(t.len());
            let truncated =
                Trace::from_events(t.name(), t.events()[..cut].to_vec()).expect("valid prefix");
            let p = c.prefix(fraction).unwrap();
            assert_eq!(p, CompiledTrace::compile(&truncated));
            assert_eq!(p.op_tids().len(), p.pool_ops().len());
        }
    }
}
