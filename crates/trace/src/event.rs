//! Trace event model.

use std::fmt;

/// Identity of a dynamically allocated block within a trace.
///
/// Ids take the role of the pointer returned by `malloc`: an id is *live*
/// between its `Alloc` and its `Free` event, and may be reused afterwards
/// (as real applications reuse addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identity of the application thread issuing a trace event.
///
/// Single-threaded traces use `ThreadId::MAIN` (tid 0) throughout; threaded
/// server traces carry the issuing thread on every `Alloc`/`Free`/`Access`
/// so the simulator can charge shared-pool contention. A block allocated on
/// one thread may legally be freed on another (producer/consumer handoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The implicit thread of single-threaded traces.
    pub const MAIN: ThreadId = ThreadId(0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One event of an allocation trace.
///
/// `Access` events aggregate the application's reads/writes to a block
/// between allocator calls, so traces stay compact (the paper's raw profile
/// data reaches gigabytes; aggregation is what keeps replay tractable).
/// `Tick` events model application compute time in which no dynamic-memory
/// activity happens; they contribute to execution time but not to memory
/// metrics. `Alloc`/`Free`/`Access` carry the issuing thread; `Tick` models
/// whole-application compute and is thread-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// The application allocates `size` bytes under identity `id`.
    Alloc {
        /// Block identity; must not currently be live.
        id: BlockId,
        /// Requested size in bytes (non-zero).
        size: u32,
        /// Thread issuing the allocation.
        tid: ThreadId,
    },
    /// The application frees block `id`.
    Free {
        /// Block identity; must be live.
        id: BlockId,
        /// Thread issuing the free (may differ from the allocating thread).
        tid: ThreadId,
    },
    /// The application performs `reads`/`writes` word accesses to block `id`.
    Access {
        /// Block identity; must be live.
        id: BlockId,
        /// Number of read accesses.
        reads: u32,
        /// Number of write accesses.
        writes: u32,
        /// Thread issuing the accesses.
        tid: ThreadId,
    },
    /// `cycles` of pure computation pass (no memory-allocator activity).
    Tick {
        /// CPU cycles of computation.
        cycles: u32,
    },
}

impl TraceEvent {
    /// An `Alloc` on the main thread (tid 0).
    pub fn alloc(id: BlockId, size: u32) -> Self {
        TraceEvent::Alloc {
            id,
            size,
            tid: ThreadId::MAIN,
        }
    }

    /// An `Alloc` on an explicit thread.
    pub fn alloc_on(tid: ThreadId, id: BlockId, size: u32) -> Self {
        TraceEvent::Alloc { id, size, tid }
    }

    /// A `Free` on the main thread (tid 0).
    pub fn free(id: BlockId) -> Self {
        TraceEvent::Free {
            id,
            tid: ThreadId::MAIN,
        }
    }

    /// A `Free` on an explicit thread.
    pub fn free_on(tid: ThreadId, id: BlockId) -> Self {
        TraceEvent::Free { id, tid }
    }

    /// An `Access` on the main thread (tid 0).
    pub fn access(id: BlockId, reads: u32, writes: u32) -> Self {
        TraceEvent::Access {
            id,
            reads,
            writes,
            tid: ThreadId::MAIN,
        }
    }

    /// An `Access` on an explicit thread.
    pub fn access_on(tid: ThreadId, id: BlockId, reads: u32, writes: u32) -> Self {
        TraceEvent::Access {
            id,
            reads,
            writes,
            tid,
        }
    }

    /// A compute `Tick`.
    pub fn tick(cycles: u32) -> Self {
        TraceEvent::Tick { cycles }
    }

    /// The block id this event refers to, if any.
    pub fn block_id(&self) -> Option<BlockId> {
        match self {
            TraceEvent::Alloc { id, .. }
            | TraceEvent::Free { id, .. }
            | TraceEvent::Access { id, .. } => Some(*id),
            TraceEvent::Tick { .. } => None,
        }
    }

    /// The issuing thread, if the event has one (`Tick` does not).
    pub fn thread_id(&self) -> Option<ThreadId> {
        match self {
            TraceEvent::Alloc { tid, .. }
            | TraceEvent::Free { tid, .. }
            | TraceEvent::Access { tid, .. } => Some(*tid),
            TraceEvent::Tick { .. } => None,
        }
    }

    /// `true` for `Alloc` and `Free` events (allocator entries).
    pub fn is_allocator_op(&self) -> bool {
        matches!(self, TraceEvent::Alloc { .. } | TraceEvent::Free { .. })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Alloc { id, size, tid } if tid.0 == 0 => write!(f, "alloc {id} {size}B"),
            TraceEvent::Alloc { id, size, tid } => write!(f, "alloc {id} {size}B @{tid}"),
            TraceEvent::Free { id, tid } if tid.0 == 0 => write!(f, "free {id}"),
            TraceEvent::Free { id, tid } => write!(f, "free {id} @{tid}"),
            TraceEvent::Access {
                id,
                reads,
                writes,
                tid,
            } if tid.0 == 0 => {
                write!(f, "access {id} r{reads} w{writes}")
            }
            TraceEvent::Access {
                id,
                reads,
                writes,
                tid,
            } => {
                write!(f, "access {id} r{reads} w{writes} @{tid}")
            }
            TraceEvent::Tick { cycles } => write!(f, "tick {cycles}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_extraction() {
        assert_eq!(
            TraceEvent::alloc(BlockId(3), 8).block_id(),
            Some(BlockId(3))
        );
        assert_eq!(TraceEvent::free(BlockId(4)).block_id(), Some(BlockId(4)));
        assert_eq!(
            TraceEvent::access(BlockId(5), 1, 0).block_id(),
            Some(BlockId(5))
        );
        assert_eq!(TraceEvent::tick(10).block_id(), None);
    }

    #[test]
    fn allocator_op_classification() {
        assert!(TraceEvent::alloc(BlockId(0), 1).is_allocator_op());
        assert!(TraceEvent::free(BlockId(0)).is_allocator_op());
        assert!(!TraceEvent::access(BlockId(0), 0, 0).is_allocator_op());
        assert!(!TraceEvent::tick(1).is_allocator_op());
    }

    #[test]
    fn thread_id_extraction() {
        assert_eq!(
            TraceEvent::alloc(BlockId(1), 8).thread_id(),
            Some(ThreadId::MAIN)
        );
        assert_eq!(
            TraceEvent::free_on(ThreadId(3), BlockId(1)).thread_id(),
            Some(ThreadId(3))
        );
        assert_eq!(TraceEvent::tick(5).thread_id(), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            TraceEvent::alloc(BlockId(7), 74).to_string(),
            "alloc #7 74B"
        );
        assert_eq!(
            TraceEvent::alloc_on(ThreadId(2), BlockId(7), 74).to_string(),
            "alloc #7 74B @t2"
        );
    }
}
