//! Trace event model.

use std::fmt;

/// Identity of a dynamically allocated block within a trace.
///
/// Ids take the role of the pointer returned by `malloc`: an id is *live*
/// between its `Alloc` and its `Free` event, and may be reused afterwards
/// (as real applications reuse addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One event of an allocation trace.
///
/// `Access` events aggregate the application's reads/writes to a block
/// between allocator calls, so traces stay compact (the paper's raw profile
/// data reaches gigabytes; aggregation is what keeps replay tractable).
/// `Tick` events model application compute time in which no dynamic-memory
/// activity happens; they contribute to execution time but not to memory
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// The application allocates `size` bytes under identity `id`.
    Alloc {
        /// Block identity; must not currently be live.
        id: BlockId,
        /// Requested size in bytes (non-zero).
        size: u32,
    },
    /// The application frees block `id`.
    Free {
        /// Block identity; must be live.
        id: BlockId,
    },
    /// The application performs `reads`/`writes` word accesses to block `id`.
    Access {
        /// Block identity; must be live.
        id: BlockId,
        /// Number of read accesses.
        reads: u32,
        /// Number of write accesses.
        writes: u32,
    },
    /// `cycles` of pure computation pass (no memory-allocator activity).
    Tick {
        /// CPU cycles of computation.
        cycles: u32,
    },
}

impl TraceEvent {
    /// The block id this event refers to, if any.
    pub fn block_id(&self) -> Option<BlockId> {
        match self {
            TraceEvent::Alloc { id, .. }
            | TraceEvent::Free { id }
            | TraceEvent::Access { id, .. } => Some(*id),
            TraceEvent::Tick { .. } => None,
        }
    }

    /// `true` for `Alloc` and `Free` events (allocator entries).
    pub fn is_allocator_op(&self) -> bool {
        matches!(self, TraceEvent::Alloc { .. } | TraceEvent::Free { .. })
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Alloc { id, size } => write!(f, "alloc {id} {size}B"),
            TraceEvent::Free { id } => write!(f, "free {id}"),
            TraceEvent::Access { id, reads, writes } => {
                write!(f, "access {id} r{reads} w{writes}")
            }
            TraceEvent::Tick { cycles } => write!(f, "tick {cycles}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_extraction() {
        assert_eq!(
            TraceEvent::Alloc {
                id: BlockId(3),
                size: 8
            }
            .block_id(),
            Some(BlockId(3))
        );
        assert_eq!(
            TraceEvent::Free { id: BlockId(4) }.block_id(),
            Some(BlockId(4))
        );
        assert_eq!(
            TraceEvent::Access {
                id: BlockId(5),
                reads: 1,
                writes: 0
            }
            .block_id(),
            Some(BlockId(5))
        );
        assert_eq!(TraceEvent::Tick { cycles: 10 }.block_id(), None);
    }

    #[test]
    fn allocator_op_classification() {
        assert!(TraceEvent::Alloc {
            id: BlockId(0),
            size: 1
        }
        .is_allocator_op());
        assert!(TraceEvent::Free { id: BlockId(0) }.is_allocator_op());
        assert!(!TraceEvent::Access {
            id: BlockId(0),
            reads: 0,
            writes: 0
        }
        .is_allocator_op());
        assert!(!TraceEvent::Tick { cycles: 1 }.is_allocator_op());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            TraceEvent::Alloc {
                id: BlockId(7),
                size: 74
            }
            .to_string(),
            "alloc #7 74B"
        );
    }
}
