//! Small sampling distributions used by the workload generators.
//!
//! Only `rand`'s uniform primitives are available offline, so the few
//! non-uniform distributions needed (exponential, geometric, weighted
//! choice) are implemented here via inverse-CDF sampling.

use rand::Rng;

/// Distribution of requested block sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Always the same size.
    Constant(u32),
    /// Uniform over `min..=max`.
    Uniform {
        /// Smallest size (inclusive, non-zero).
        min: u32,
        /// Largest size (inclusive).
        max: u32,
    },
    /// Exponential with the given mean, clamped to `min..=max`.
    Exponential {
        /// Mean of the unclamped exponential.
        mean: f64,
        /// Clamp floor (non-zero).
        min: u32,
        /// Clamp ceiling.
        max: u32,
    },
    /// Weighted choice over explicit sizes; weights need not be normalized.
    Choice(Vec<(u32, f64)>),
}

impl SizeDist {
    /// Samples one size.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is malformed (empty choice list, zero or
    /// negative total weight, `min > max`, or a zero size) — these are
    /// construction bugs, not data-dependent conditions.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            SizeDist::Constant(s) => {
                assert!(*s > 0, "constant size must be non-zero");
                *s
            }
            SizeDist::Uniform { min, max } => {
                assert!(*min > 0 && min <= max, "uniform bounds invalid");
                rng.gen_range(*min..=*max)
            }
            SizeDist::Exponential { mean, min, max } => {
                assert!(*min > 0 && min <= max, "exponential clamp invalid");
                let x = exponential(rng, *mean);
                (x.round() as u32).clamp(*min, *max)
            }
            SizeDist::Choice(items) => {
                assert!(!items.is_empty(), "empty choice distribution");
                let total: f64 = items.iter().map(|(_, w)| *w).sum();
                assert!(total > 0.0, "choice weights must sum to > 0");
                let mut x = rng.gen::<f64>() * total;
                for (size, w) in items {
                    x -= w;
                    if x <= 0.0 {
                        assert!(*size > 0, "choice size must be non-zero");
                        return *size;
                    }
                }
                items.last().expect("non-empty").0
            }
        }
    }
}

/// Distribution of block lifetimes, in generator steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LifetimeDist {
    /// Exactly `n` steps.
    Constant(u64),
    /// Geometric with the given mean (at least 1 step).
    Geometric {
        /// Mean lifetime in steps (must be >= 1).
        mean: f64,
    },
    /// Uniform over `min..=max` steps.
    Uniform {
        /// Shortest lifetime (inclusive).
        min: u64,
        /// Longest lifetime (inclusive).
        max: u64,
    },
}

impl LifetimeDist {
    /// Samples one lifetime (always >= 1 step).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            LifetimeDist::Constant(n) => (*n).max(1),
            LifetimeDist::Geometric { mean } => {
                assert!(*mean >= 1.0, "geometric mean must be >= 1");
                (exponential(rng, *mean).round() as u64).max(1)
            }
            LifetimeDist::Uniform { min, max } => {
                assert!(min <= max, "uniform lifetime bounds invalid");
                rng.gen_range(*min..=*max).max(1)
            }
        }
    }
}

/// Exponential sample with the given mean (inverse-CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = rng.gen::<f64>();
    // 1 - u in (0, 1]: ln never sees 0.
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        let d = SizeDist::Constant(74);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 74);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        let d = SizeDist::Uniform { min: 8, max: 64 };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((8..=64).contains(&s));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "sampled mean {mean}");
    }

    #[test]
    fn exponential_clamps() {
        let mut r = rng();
        let d = SizeDist::Exponential {
            mean: 10.0,
            min: 16,
            max: 32,
        };
        for _ in 0..500 {
            let s = d.sample(&mut r);
            assert!((16..=32).contains(&s));
        }
    }

    #[test]
    fn choice_hits_all_and_respects_weights() {
        let mut r = rng();
        let d = SizeDist::Choice(vec![(74, 0.8), (1500, 0.2)]);
        let n = 10_000;
        let mut small = 0u32;
        for _ in 0..n {
            match d.sample(&mut r) {
                74 => small += 1,
                1500 => {}
                other => panic!("unexpected size {other}"),
            }
        }
        let frac = f64::from(small) / f64::from(n);
        assert!((frac - 0.8).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn lifetimes_are_at_least_one() {
        let mut r = rng();
        for d in [
            LifetimeDist::Constant(0),
            LifetimeDist::Geometric { mean: 1.0 },
            LifetimeDist::Uniform { min: 0, max: 2 },
        ] {
            for _ in 0..100 {
                assert!(d.sample(&mut r) >= 1);
            }
        }
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = rng();
        let d = LifetimeDist::Geometric { mean: 50.0 };
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 3.0, "sampled mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty choice")]
    fn empty_choice_panics() {
        let mut r = rng();
        let _ = SizeDist::Choice(vec![]).sample(&mut r);
    }
}
