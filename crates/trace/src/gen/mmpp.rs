//! Markov-modulated workload generator.
//!
//! A two-state (ON/OFF) Markov-modulated process drives the allocation
//! rate: in the ON state allocations arrive back to back, in the OFF state
//! the application computes. This is the classical traffic model for the
//! bursty wireless workloads the paper targets, exposed directly so
//! sensitivity studies can sweep burstiness without touching the
//! application-specific generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{BlockId, TraceEvent};
use crate::gen::dist::{LifetimeDist, SizeDist};
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the Markov-modulated generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MmppConfig {
    /// Total allocations to produce.
    pub allocs: usize,
    /// Probability of leaving the ON state after each allocation.
    pub p_on_to_off: f64,
    /// Probability of leaving the OFF state after each idle tick.
    pub p_off_to_on: f64,
    /// Compute cycles per OFF-state tick.
    pub off_tick_cycles: u32,
    /// Requested-size distribution.
    pub sizes: SizeDist,
    /// Lifetime distribution, in allocation steps.
    pub lifetimes: LifetimeDist,
    /// Application accesses per allocated word.
    pub accesses_per_word: f64,
}

impl MmppConfig {
    /// A bursty default: mean burst length 20 allocations, mean idle
    /// period 8 ticks, bimodal sizes.
    pub fn bursty(allocs: usize) -> Self {
        MmppConfig {
            allocs,
            p_on_to_off: 0.05,
            p_off_to_on: 0.125,
            off_tick_cycles: 500,
            sizes: SizeDist::Choice(vec![(74, 0.6), (1500, 0.25), (256, 0.15)]),
            lifetimes: LifetimeDist::Geometric { mean: 24.0 },
            accesses_per_word: 1.0,
        }
    }

    /// Expected allocations per ON burst.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_on_to_off
    }

    /// Expected ticks per OFF period.
    pub fn mean_idle_len(&self) -> f64 {
        1.0 / self.p_off_to_on
    }
}

impl TraceGenerator for MmppConfig {
    fn generate(&self, seed: u64) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.p_on_to_off) && (0.0..=1.0).contains(&self.p_off_to_on),
            "transition probabilities must be in [0, 1]"
        );
        assert!(self.p_off_to_on > 0.0, "OFF state must be leavable");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3A5C_0FF1);
        let mut trace = Trace::new("mmpp");
        let push = |t: &mut Trace, ev: TraceEvent| {
            t.push(ev).expect("generator emits well-formed traces");
        };

        let mut on = true;
        let mut produced = 0usize;
        // (death_step, id, size) min-heap.
        let mut deaths: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u64, u32)>> =
            std::collections::BinaryHeap::new();

        while produced < self.allocs {
            if on {
                let step = produced as u64;
                while let Some(std::cmp::Reverse((when, id, size))) = deaths.peek().copied() {
                    if when > step {
                        break;
                    }
                    deaths.pop();
                    emit_final_access(&mut trace, BlockId(id), size, self.accesses_per_word, push);
                    push(
                        &mut trace,
                        TraceEvent::Free {
                            tid: crate::event::ThreadId::MAIN,
                            id: BlockId(id),
                        },
                    );
                }
                let id = BlockId(step + 1);
                let size = self.sizes.sample(&mut rng);
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        size,
                    },
                );
                if self.accesses_per_word > 0.0 {
                    let words = u64::from(size / 4 + 1);
                    let writes = (words as f64 * self.accesses_per_word * 0.5) as u32;
                    if writes > 0 {
                        push(
                            &mut trace,
                            TraceEvent::Access {
                                tid: crate::event::ThreadId::MAIN,
                                id,
                                reads: writes,
                                writes,
                            },
                        );
                    }
                }
                let life = self.lifetimes.sample(&mut rng);
                deaths.push(std::cmp::Reverse((step + life, id.0, size)));
                produced += 1;
                if rng.gen::<f64>() < self.p_on_to_off {
                    on = false;
                }
            } else {
                push(
                    &mut trace,
                    TraceEvent::Tick {
                        cycles: self.off_tick_cycles,
                    },
                );
                if rng.gen::<f64>() < self.p_off_to_on {
                    on = true;
                }
            }
        }
        while let Some(std::cmp::Reverse((_, id, size))) = deaths.pop() {
            emit_final_access(&mut trace, BlockId(id), size, self.accesses_per_word, push);
            push(
                &mut trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: BlockId(id),
                },
            );
        }
        trace
    }
}

fn emit_final_access(
    trace: &mut Trace,
    id: BlockId,
    size: u32,
    accesses_per_word: f64,
    push: impl Fn(&mut Trace, TraceEvent),
) {
    if accesses_per_word > 0.0 {
        let reads = (f64::from(size / 4 + 1) * accesses_per_word * 0.25) as u32;
        if reads > 0 {
            push(
                trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                    reads,
                    writes: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn produces_requested_allocs_and_frees_all() {
        let t = MmppConfig::bursty(1_000).generate(1);
        let s = TraceStats::compute(&t);
        assert_eq!(s.allocs, 1_000);
        assert_eq!(s.frees, 1_000);
        assert_eq!(t.final_live_bytes(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = MmppConfig::bursty(300).generate(5);
        let b = MmppConfig::bursty(300).generate(5);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn burstier_configs_have_more_idle_ticks() {
        let calm = MmppConfig {
            p_on_to_off: 0.01,
            ..MmppConfig::bursty(800)
        };
        let bursty = MmppConfig {
            p_on_to_off: 0.2,
            ..MmppConfig::bursty(800)
        };
        let ticks = |cfg: &MmppConfig| TraceStats::compute(&cfg.generate(3)).tick_cycles;
        assert!(
            ticks(&bursty) > ticks(&calm),
            "more ON→OFF transitions must mean more idle time"
        );
    }

    #[test]
    fn mean_lengths() {
        let cfg = MmppConfig::bursty(10);
        assert!((cfg.mean_burst_len() - 20.0).abs() < 1e-9);
        assert!((cfg.mean_idle_len() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "leavable")]
    fn stuck_off_state_rejected() {
        let cfg = MmppConfig {
            p_off_to_on: 0.0,
            ..MmppConfig::bursty(10)
        };
        let _ = cfg.generate(0);
    }
}
