//! MPEG-4 VTC-like still-texture decoding workload.
//!
//! The MPEG-4 Visual Texture deCoder decodes still textures with a wavelet
//! transform + zerotree entropy coder. Its dynamic-memory behaviour is
//! phase-structured and very different from the packet workload, which is
//! exactly why the paper uses it as the second case study:
//!
//! * a burst of **many small zerotree-node allocations** (one hot small
//!   size) that live until the image is done;
//! * **large per-level coefficient buffers** (a handful of distinct large
//!   sizes derived from the image pyramid) with nested lifetimes;
//! * **compute-dominated phases** (bitplane decoding, inverse DWT) — most
//!   of the execution time is spent in ticks, not allocator calls, so
//!   allocator tuning moves execution time only a little (the paper reports
//!   5.4 % for VTC vs. 27.9 % for Easyport) while energy still moves a lot
//!   through pool placement.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{BlockId, TraceEvent};
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the VTC-like generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VtcConfig {
    /// Number of still images decoded.
    pub images: usize,
    /// Image width in pixels (power of two recommended).
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Wavelet decomposition levels.
    pub wavelet_levels: u32,
    /// Bitplanes decoded per coefficient buffer.
    pub bitplanes: u32,
}

impl VtcConfig {
    /// A small configuration for unit tests (one 64×64 image).
    pub fn small() -> Self {
        VtcConfig {
            images: 1,
            width: 64,
            height: 64,
            wavelet_levels: 3,
            bitplanes: 6,
        }
    }

    /// The case-study configuration used by the experiment reproduction:
    /// four 256×256 still textures, five-level wavelet pyramid.
    pub fn paper() -> Self {
        VtcConfig {
            images: 4,
            width: 256,
            height: 256,
            wavelet_levels: 5,
            bitplanes: 8,
        }
    }
}

/// Zerotree nodes are small fixed-size records — VTC's hot small size.
const NODE_SIZE: u32 = 32;
/// Small header/state blocks allocated while parsing.
const PARSE_SIZES: [u32; 4] = [24, 40, 64, 96];

impl TraceGenerator for VtcConfig {
    fn generate(&self, seed: u64) -> Trace {
        assert!(self.wavelet_levels >= 1, "need at least one wavelet level");
        assert!(
            self.width >> self.wavelet_levels > 0 && self.height >> self.wavelet_levels > 0,
            "image too small for the requested wavelet levels"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x007C_0DEC_u64);
        let mut trace = Trace::new("vtc");
        let mut next_id = 0u64;
        let mut fresh = || {
            next_id += 1;
            BlockId(next_id)
        };
        let push = |t: &mut Trace, ev: TraceEvent| {
            t.push(ev).expect("generator emits well-formed traces");
        };

        for _image in 0..self.images {
            // Phase 1: bitstream parsing — a few small short-lived blocks.
            let mut parse_blocks = Vec::new();
            for _ in 0..6 {
                let id = fresh();
                let size = PARSE_SIZES[rng.gen_range(0..PARSE_SIZES.len())];
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        size,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        reads: 10,
                        writes: 6,
                    },
                );
                parse_blocks.push(id);
            }
            push(&mut trace, TraceEvent::Tick { cycles: 4_000 });

            // Phase 2: decoded-texture output buffer, lives until image end.
            let texture = fresh();
            let texture_size = self.width * self.height; // 8bpp luminance
            push(
                &mut trace,
                TraceEvent::Alloc {
                    tid: crate::event::ThreadId::MAIN,
                    id: texture,
                    size: texture_size,
                },
            );

            // Phase 3: zerotree construction — many small nodes, one per
            // coarse-level coefficient neighbourhood; all live to image end.
            let coarse_w = self.width >> self.wavelet_levels;
            let coarse_h = self.height >> self.wavelet_levels;
            let node_count = (coarse_w * coarse_h * 4) as usize;
            let mut nodes = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                let id = fresh();
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        size: NODE_SIZE,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        reads: 2,
                        writes: 4,
                    },
                );
                nodes.push(id);
            }
            push(&mut trace, TraceEvent::Tick { cycles: 20_000 });

            // Phase 4: per wavelet level, coarse to fine: allocate the three
            // detail subband buffers, decode bitplanes (heavy access +
            // compute), run the inverse transform into the texture, free.
            for level in (1..=self.wavelet_levels).rev() {
                let sub_w = self.width >> level;
                let sub_h = self.height >> level;
                let sub_size = sub_w * sub_h * 2; // 16-bit coefficients
                let mut subbands = Vec::with_capacity(3);
                for _sb in 0..3 {
                    let id = fresh();
                    push(
                        &mut trace,
                        TraceEvent::Alloc {
                            tid: crate::event::ThreadId::MAIN,
                            id,
                            size: sub_size,
                        },
                    );
                    subbands.push(id);
                }

                // Bitplane decoding: every coefficient decode consults its
                // zerotree node, so node traffic scales with
                // coefficients × bitplanes — the hot, small, dedicated-pool
                // data of this workload. The node reads are spread over a
                // sample of node ids to keep the trace compact.
                let coeffs = sub_w * sub_h;
                for _plane in 0..self.bitplanes {
                    for &sb in &subbands {
                        push(
                            &mut trace,
                            TraceEvent::Access {
                                tid: crate::event::ThreadId::MAIN,
                                id: sb,
                                reads: coeffs / 16,
                                writes: coeffs / 16,
                            },
                        );
                    }
                    let samples = 16.min(nodes.len());
                    // Every coefficient decode walks its zerotree ancestry:
                    // ~2.5 node reads per coefficient across the 3 subbands.
                    let node_reads_total = 3 * coeffs;
                    let per_sample = (node_reads_total / samples as u32).max(1);
                    for _ in 0..samples {
                        let id = nodes[rng.gen_range(0..nodes.len())];
                        push(
                            &mut trace,
                            TraceEvent::Access {
                                tid: crate::event::ThreadId::MAIN,
                                id,
                                reads: per_sample,
                                writes: per_sample / 6,
                            },
                        );
                    }
                    push(
                        &mut trace,
                        TraceEvent::Tick {
                            cycles: coeffs * 700,
                        },
                    );
                }

                // Inverse DWT for this level: read subbands, write texture.
                for &sb in &subbands {
                    push(
                        &mut trace,
                        TraceEvent::Access {
                            tid: crate::event::ThreadId::MAIN,
                            id: sb,
                            reads: coeffs / 2,
                            writes: 0,
                        },
                    );
                }
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: texture,
                        reads: coeffs / 2,
                        writes: coeffs,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Tick {
                        cycles: coeffs * 100,
                    },
                );

                for sb in subbands {
                    push(
                        &mut trace,
                        TraceEvent::Free {
                            tid: crate::event::ThreadId::MAIN,
                            id: sb,
                        },
                    );
                }
            }

            // Phase 5: image done — emit, then tear everything down.
            push(
                &mut trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id: texture,
                    reads: texture_size / 8,
                    writes: 0,
                },
            );
            push(&mut trace, TraceEvent::Tick { cycles: 30_000 });
            for id in nodes {
                push(
                    &mut trace,
                    TraceEvent::Free {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                    },
                );
            }
            for id in parse_blocks {
                push(
                    &mut trace,
                    TraceEvent::Free {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                    },
                );
            }
            push(
                &mut trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: texture,
                },
            );
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn node_size_dominates_allocations() {
        let t = VtcConfig::small().generate(1);
        let s = TraceStats::compute(&t);
        assert_eq!(s.dominant_sizes(1), vec![NODE_SIZE]);
    }

    #[test]
    fn everything_is_freed() {
        let t = VtcConfig::paper().generate(2);
        assert_eq!(t.final_live_bytes(), 0);
    }

    #[test]
    fn subband_sizes_follow_pyramid() {
        let cfg = VtcConfig::small();
        let t = cfg.generate(3);
        let s = TraceStats::compute(&t);
        for level in 1..=cfg.wavelet_levels {
            let sub = (cfg.width >> level) * (cfg.height >> level) * 2;
            assert!(
                s.size_stat(sub).is_some(),
                "expected subband buffers of {sub} bytes"
            );
        }
        assert!(
            s.size_stat(cfg.width * cfg.height).is_some(),
            "texture buffer"
        );
    }

    #[test]
    fn compute_dominates_time() {
        // VTC is compute-heavy: tick cycles must dwarf the number of
        // allocator operations, which is what limits the achievable
        // execution-time savings to a few percent (paper: 5.4 %).
        let t = VtcConfig::small().generate(4);
        let s = TraceStats::compute(&t);
        assert!(s.tick_cycles > 50 * (s.allocs + s.frees));
    }

    #[test]
    fn peak_live_is_image_scale() {
        let cfg = VtcConfig::small();
        let t = cfg.generate(5);
        let s = TraceStats::compute(&t);
        let texture = u64::from(cfg.width * cfg.height);
        assert!(s.peak_live_bytes >= texture, "texture buffer is live");
        assert!(s.peak_live_bytes < 16 * texture, "no unbounded growth");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_over_deep_pyramid() {
        let cfg = VtcConfig {
            width: 8,
            height: 8,
            wavelet_levels: 5,
            ..VtcConfig::small()
        };
        let _ = cfg.generate(0);
    }
}
