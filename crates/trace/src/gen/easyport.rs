//! Easyport-like wireless-network workload.
//!
//! The Infineon Easyport is an integrated access device: it forwards
//! packets between network interfaces, keeping per-packet descriptors and
//! buffers plus a long-lived control plane (connection contexts, timers).
//! Its dynamic-memory behaviour — the property the DATE 2006 evaluation
//! depends on — is:
//!
//! * a **few dominant block sizes**: per-packet 28-byte descriptors and
//!   74-byte header buffers (the 74-byte size is named in the paper), and
//!   an IMIX-like payload mixture with 40-byte and 1500-byte modes;
//! * **bursty arrivals**: packets arrive in bursts separated by idle
//!   compute;
//! * **short, pipelined lifetimes**: a packet's blocks die when it leaves
//!   the processing pipeline, a bounded number of packets later, while a
//!   fraction lingers in a retransmission queue;
//! * a **small long-lived control plane** that interleaves odd-sized
//!   allocations between the hot ones (this is what fragments naive
//!   general-pool allocators).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{BlockId, TraceEvent};
use crate::gen::dist::{exponential, SizeDist};
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the Easyport-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct EasyportConfig {
    /// Number of packets to process.
    pub packets: usize,
    /// Mean packets per arrival burst.
    pub burst_mean: f64,
    /// Pipeline depth: a packet's blocks are freed this many packets later.
    pub pipeline_depth: usize,
    /// Fraction of packets parked in the retransmission queue.
    pub retransmit_fraction: f64,
    /// How many packets a retransmitted packet stays parked.
    pub retransmit_window: usize,
    /// Payload size mixture (the discrete hot sizes).
    pub payload_sizes: SizeDist,
    /// Fraction of payloads drawn from a continuous 64–1400 byte range
    /// instead of the discrete mixture (variable-length data frames; the
    /// fragmentation driver for general pools).
    pub continuous_fraction: f64,
    /// Compute cycles per processed packet.
    pub cycles_per_packet: u32,
    /// Compute cycles of idle time between bursts.
    pub idle_cycles: u32,
    /// Number of live connection contexts (256 B each).
    pub connections: usize,
    /// Replace one connection context every this many packets (session
    /// churn interleaves long-lived blocks between packet blocks;
    /// 0 disables churn).
    pub session_churn_every: usize,
}

impl EasyportConfig {
    /// A small configuration for unit tests and doc examples (~2 k packets).
    pub fn small() -> Self {
        EasyportConfig {
            packets: 2_000,
            ..Self::paper()
        }
    }

    /// The case-study configuration used by the experiment reproduction
    /// (~8 k packets, IMIX-like payload mix).
    pub fn paper() -> Self {
        EasyportConfig {
            packets: 8_000,
            burst_mean: 12.0,
            pipeline_depth: 24,
            retransmit_fraction: 0.06,
            retransmit_window: 400,
            payload_sizes: SizeDist::Choice(vec![
                (40, 0.45),   // TCP acks / VoIP
                (576, 0.18),  // legacy MTU
                (1500, 0.30), // full Ethernet frames
                (296, 0.07),  // PPP fragments
            ]),
            continuous_fraction: 0.10,
            cycles_per_packet: 4_000,
            idle_cycles: 2_400,
            connections: 64,
            session_churn_every: 24,
        }
    }
}

/// Descriptor blocks are 28 bytes, header buffers 74 bytes (from the
/// paper's pool example), connection contexts 256 bytes, timers 48 bytes.
const DESCRIPTOR_SIZE: u32 = 28;
const HEADER_SIZE: u32 = 74;
const CONNECTION_SIZE: u32 = 256;
const TIMER_SIZE: u32 = 48;

#[derive(Debug)]
struct PacketBlocks {
    descriptor: BlockId,
    header: BlockId,
    payload: BlockId,
    payload_size: u32,
}

impl TraceGenerator for EasyportConfig {
    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xEA5E_B0B7);
        let mut trace = Trace::new("easyport");
        let mut next_id = 0u64;
        let mut fresh = || {
            next_id += 1;
            BlockId(next_id)
        };

        let mut push = |t: &mut Trace, ev: TraceEvent| {
            t.push(ev).expect("generator emits well-formed traces");
        };

        // Control plane: long-lived connection contexts, allocated up front,
        // freed at shutdown.
        let mut contexts = Vec::with_capacity(self.connections);
        for _ in 0..self.connections {
            let id = fresh();
            push(
                &mut trace,
                TraceEvent::Alloc {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                    size: CONNECTION_SIZE,
                },
            );
            push(
                &mut trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                    reads: 8,
                    writes: 32,
                },
            );
            contexts.push(id);
        }

        // Pipeline of in-flight packets and the retransmission queue,
        // both keyed by the packet index at which they are released.
        let mut pipeline: Vec<(usize, PacketBlocks)> = Vec::new();
        let mut timers: Vec<(usize, BlockId)> = Vec::new();

        let mut produced = 0usize;
        while produced < self.packets {
            // One burst of packets, then idle.
            let burst = (exponential(&mut rng, self.burst_mean).round() as usize)
                .clamp(1, 4 * self.burst_mean as usize + 1)
                .min(self.packets - produced);

            for _ in 0..burst {
                let pkt_index = produced;
                produced += 1;

                // Release everything whose time has come (in FIFO order —
                // the pipeline drains head-first).
                release_due(&mut trace, &mut pipeline, &mut timers, pkt_index, &mut push);

                // Session churn: replace one long-lived context, leaving a
                // hole between packet blocks in any shared pool.
                if self.session_churn_every > 0
                    && pkt_index.is_multiple_of(self.session_churn_every)
                    && !contexts.is_empty()
                {
                    let slot = rng.gen_range(0..contexts.len());
                    let old = contexts[slot];
                    push(
                        &mut trace,
                        TraceEvent::Access {
                            tid: crate::event::ThreadId::MAIN,
                            id: old,
                            reads: 16,
                            writes: 0,
                        },
                    );
                    push(
                        &mut trace,
                        TraceEvent::Free {
                            tid: crate::event::ThreadId::MAIN,
                            id: old,
                        },
                    );
                    let id = fresh();
                    push(
                        &mut trace,
                        TraceEvent::Alloc {
                            tid: crate::event::ThreadId::MAIN,
                            id,
                            size: CONNECTION_SIZE,
                        },
                    );
                    push(
                        &mut trace,
                        TraceEvent::Access {
                            tid: crate::event::ThreadId::MAIN,
                            id,
                            reads: 8,
                            writes: 32,
                        },
                    );
                    contexts[slot] = id;
                }

                // RX: allocate descriptor + header + payload, write them.
                let descriptor = fresh();
                let header = fresh();
                let payload = fresh();
                let payload_size = if rng.gen::<f64>() < self.continuous_fraction {
                    // Variable-length data frame, word-aligned.
                    rng.gen_range(64..=1400u32) & !3
                } else {
                    self.payload_sizes.sample(&mut rng)
                };
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id: descriptor,
                        size: DESCRIPTOR_SIZE,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id: header,
                        size: HEADER_SIZE,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id: payload,
                        size: payload_size,
                    },
                );
                // Payload moves DMA-style: the CPU only samples it (checksum
                // windows), while headers/descriptors are walked repeatedly —
                // the access profile of a network processor.
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: payload,
                        reads: 0,
                        writes: payload_size / 64 + 1,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: header,
                        reads: 12,
                        writes: 8,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: descriptor,
                        reads: 6,
                        writes: 4,
                    },
                );

                // Protocol processing: classification, routing, rewriting.
                let ctx = contexts[rng.gen_range(0..contexts.len())];
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: ctx,
                        reads: 6,
                        writes: 2,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: header,
                        reads: 16,
                        writes: 6,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: descriptor,
                        reads: 8,
                        writes: 4,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: payload,
                        reads: payload_size / 32 + 1,
                        writes: 0,
                    },
                );
                push(
                    &mut trace,
                    TraceEvent::Tick {
                        cycles: self.cycles_per_packet,
                    },
                );

                // A few packets arm a retransmission timer (small block with
                // a medium lifetime) and park longer.
                let parked = rng.gen::<f64>() < self.retransmit_fraction;
                let release_at = if parked {
                    let timer = fresh();
                    push(
                        &mut trace,
                        TraceEvent::Alloc {
                            tid: crate::event::ThreadId::MAIN,
                            id: timer,
                            size: TIMER_SIZE,
                        },
                    );
                    push(
                        &mut trace,
                        TraceEvent::Access {
                            tid: crate::event::ThreadId::MAIN,
                            id: timer,
                            reads: 2,
                            writes: 6,
                        },
                    );
                    timers.push((pkt_index + self.retransmit_window, timer));
                    pkt_index + self.retransmit_window
                } else {
                    pkt_index + self.pipeline_depth
                };
                pipeline.push((
                    release_at,
                    PacketBlocks {
                        descriptor,
                        header,
                        payload,
                        payload_size,
                    },
                ));
            }

            push(
                &mut trace,
                TraceEvent::Tick {
                    cycles: self.idle_cycles,
                },
            );
        }

        // Drain: release everything still in flight, then the control plane.
        release_due(
            &mut trace,
            &mut pipeline,
            &mut timers,
            usize::MAX,
            &mut push,
        );
        for id in contexts {
            push(
                &mut trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                },
            );
        }
        trace
    }
}

fn release_due(
    trace: &mut Trace,
    pipeline: &mut Vec<(usize, PacketBlocks)>,
    timers: &mut Vec<(usize, BlockId)>,
    now: usize,
    push: &mut impl FnMut(&mut Trace, TraceEvent),
) {
    let mut i = 0;
    while i < pipeline.len() {
        if pipeline[i].0 <= now {
            let (_, blocks) = pipeline.remove(i);
            // TX: descriptor handoff and a final payload sample, then free.
            push(
                trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.descriptor,
                    reads: 4,
                    writes: 2,
                },
            );
            push(
                trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.header,
                    reads: 4,
                    writes: 2,
                },
            );
            push(
                trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.payload,
                    reads: blocks.payload_size / 64 + 1,
                    writes: 0,
                },
            );
            push(
                trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.payload,
                },
            );
            push(
                trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.header,
                },
            );
            push(
                trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: blocks.descriptor,
                },
            );
        } else {
            i += 1;
        }
    }
    let mut j = 0;
    while j < timers.len() {
        if timers[j].0 <= now {
            let (_, id) = timers.remove(j);
            push(
                trace,
                TraceEvent::Access {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                    reads: 2,
                    writes: 1,
                },
            );
            push(
                trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                },
            );
        } else {
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn dominant_sizes_match_paper_profile() {
        let t = EasyportConfig::small().generate(1);
        let s = TraceStats::compute(&t);
        let hot = s.dominant_sizes(3);
        // Every packet allocates one 28 B descriptor and one 74 B header,
        // so those two sizes must dominate.
        assert!(hot.contains(&DESCRIPTOR_SIZE), "hot sizes: {hot:?}");
        assert!(hot.contains(&HEADER_SIZE), "hot sizes: {hot:?}");
    }

    #[test]
    fn everything_is_freed() {
        let t = EasyportConfig::small().generate(2);
        assert_eq!(t.final_live_bytes(), 0);
        assert_eq!(t.live_blocks().count(), 0);
    }

    #[test]
    fn packet_count_scales_allocations() {
        let small = EasyportConfig {
            packets: 500,
            ..EasyportConfig::paper()
        };
        let big = EasyportConfig {
            packets: 2_000,
            ..EasyportConfig::paper()
        };
        let ss = TraceStats::compute(&small.generate(3));
        let sb = TraceStats::compute(&big.generate(3));
        // >= 3 allocations per packet.
        assert!(ss.allocs >= 1_500);
        assert!(sb.allocs >= 4.0 as u64 * ss.allocs / 2);
    }

    #[test]
    fn live_set_is_bounded_by_pipeline() {
        let cfg = EasyportConfig::small();
        let t = cfg.generate(4);
        let s = TraceStats::compute(&t);
        // Peak live blocks: pipeline depth * 3 blocks + retransmit queue +
        // contexts + timers; far below total allocations.
        assert!(s.peak_live_blocks < s.allocs / 4);
    }

    #[test]
    fn trace_has_bursty_ticks() {
        let t = EasyportConfig::small().generate(5);
        let idle = EasyportConfig::small().idle_cycles;
        let idles = t
            .iter()
            .filter(|e| matches!(e, TraceEvent::Tick { cycles } if *cycles == idle))
            .count();
        assert!(idles > 10, "expected many bursts, got {idles}");
    }

    #[test]
    fn payload_mixture_includes_full_frames() {
        let t = EasyportConfig::small().generate(6);
        let s = TraceStats::compute(&t);
        assert!(s.size_stat(1500).is_some(), "1500 B frames must occur");
        assert!(s.size_stat(40).is_some(), "40 B acks must occur");
    }
}
