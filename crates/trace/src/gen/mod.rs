//! Deterministic workload generators.
//!
//! The paper evaluates on two proprietary applications: the Infineon
//! **Easyport** wireless-network application and the **MPEG-4 Visual
//! Texture deCoder (VTC)**. Their traces are not public, so this module
//! synthesizes workloads that reproduce the *distributional properties*
//! that drive allocator behaviour (see `DESIGN.md` §2 for the substitution
//! argument):
//!
//! * [`EasyportConfig`] — bursty packet processing with a few dominant
//!   block sizes (the paper names 74-byte and 1500-byte blocks), short
//!   pipeline lifetimes and a long-lived control plane;
//! * [`VtcConfig`] — phase-structured still-texture decoding: many small
//!   zerotree nodes, large per-level coefficient buffers, compute-heavy
//!   phases;
//! * [`SyntheticConfig`] — fully configurable size/lifetime mixtures for
//!   stress tests and ablations;
//! * [`MmppConfig`] — Markov-modulated burstiness sweeps;
//! * [`PhaseShiftConfig`] — synthetic phases concatenated so the
//!   allocation mixture shifts mid-run (the robustness stressor behind
//!   the scenario suites);
//! * [`ServerMixConfig`] — threaded server traffic: request/connection
//!   scoped pools, diurnal + flash-crowd load, and responses freed by a
//!   different thread than allocated them (the contention stressor).
//!
//! All generators are deterministic in their seed.

mod dist;
mod easyport;
mod mmpp;
mod phase;
mod server;
mod synthetic;
mod vtc;

pub use dist::{LifetimeDist, SizeDist};
pub use easyport::EasyportConfig;
pub use mmpp::MmppConfig;
pub use phase::PhaseShiftConfig;
pub use server::ServerMixConfig;
pub use synthetic::{ramp, SyntheticConfig};
pub use vtc::VtcConfig;

use std::sync::Arc;

use crate::compiled::CompiledTrace;
use crate::trace::Trace;

/// A reproducible workload generator.
pub trait TraceGenerator {
    /// Generates the workload trace; the same seed yields the same trace.
    fn generate(&self, seed: u64) -> Trace;

    /// Generates the workload directly in compiled (replay-optimized)
    /// form — what simulation consumers want. The default lowers the
    /// validated trace; generators with a cheaper direct path may
    /// override.
    fn generate_compiled(&self, seed: u64) -> Arc<CompiledTrace> {
        CompiledTrace::compile_shared(&self.generate(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    /// Generators must be deterministic in their seed — exploration results
    /// are only comparable if every configuration replays the same trace.
    #[test]
    fn generators_are_seed_deterministic() {
        let e1 = EasyportConfig::small().generate(7);
        let e2 = EasyportConfig::small().generate(7);
        assert_eq!(e1.events(), e2.events());

        let v1 = VtcConfig::small().generate(7);
        let v2 = VtcConfig::small().generate(7);
        assert_eq!(v1.events(), v2.events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = EasyportConfig::small().generate(1);
        let b = EasyportConfig::small().generate(2);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn generated_traces_are_well_formed() {
        // Trace::push validates as events are appended; reaching here with
        // non-trivial content proves well-formedness.
        let t = EasyportConfig::small().generate(3);
        assert!(t.len() > 100);
        let s = TraceStats::compute(&t);
        assert!(s.allocs > 0);
        assert_eq!(
            s.allocs, s.frees,
            "generators free everything they allocate"
        );
    }
}
