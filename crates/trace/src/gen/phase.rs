//! Phase-shift workloads: the allocation mixture changes mid-run.
//!
//! Real embedded applications rarely keep one steady-state allocation
//! profile: a codec switches from parsing to decoding, a router from slow
//! start to saturation. A configuration tuned on the first phase's mixture
//! can fall off a cliff when the size/lifetime distribution shifts — the
//! classic robustness trap the scenario suites in `dmx-core` are built to
//! expose. This generator concatenates independent [`SyntheticConfig`]
//! phases into one well-formed trace, renumbering block identities so the
//! phases cannot collide.

use crate::event::{BlockId, TraceEvent};
use crate::gen::synthetic::SyntheticConfig;
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the phase-shift generator: an ordered list of
/// synthetic phases replayed back to back.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShiftConfig {
    /// Trace name.
    pub name: String,
    /// The phases, in playback order. Each phase frees everything it
    /// allocates before the next phase begins (the `SyntheticConfig`
    /// generator drains survivors), so the shift point is a clean break in
    /// the distribution, not in liveness.
    pub phases: Vec<SyntheticConfig>,
    /// Idle compute between phases (cycles; 0 disables the separator).
    pub inter_phase_cycles: u32,
}

impl PhaseShiftConfig {
    /// The canonical two-phase stress: steady small-object churn that
    /// abruptly turns into the fragmentation-hostile wide-size mixture.
    /// `allocs` is the total across both phases.
    pub fn churn_to_frag(allocs: usize) -> Self {
        PhaseShiftConfig {
            name: "phase-shift".to_owned(),
            phases: vec![
                SyntheticConfig::uniform_churn(allocs / 2),
                SyntheticConfig::fragmenter(allocs - allocs / 2),
            ],
            inter_phase_cycles: 2_000,
        }
    }
}

impl TraceGenerator for PhaseShiftConfig {
    fn generate(&self, seed: u64) -> Trace {
        assert!(!self.phases.is_empty(), "need at least one phase");
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut id_offset = 0u64;
        for (k, phase) in self.phases.iter().enumerate() {
            // Each phase gets its own derived seed so reordering phases
            // changes the trace, and a max-id scan so renumbered identities
            // never collide across phases.
            let part = phase.generate(seed ^ ((k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let mut max_id = 0u64;
            for ev in part.events() {
                events.push(match *ev {
                    TraceEvent::Alloc { id, size, .. } => {
                        max_id = max_id.max(id.0);
                        TraceEvent::Alloc {
                            tid: crate::event::ThreadId::MAIN,
                            id: BlockId(id.0 + id_offset),
                            size,
                        }
                    }
                    TraceEvent::Free { id, .. } => TraceEvent::Free {
                        tid: crate::event::ThreadId::MAIN,
                        id: BlockId(id.0 + id_offset),
                    },
                    TraceEvent::Access {
                        id, reads, writes, ..
                    } => TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: BlockId(id.0 + id_offset),
                        reads,
                        writes,
                    },
                    TraceEvent::Tick { cycles } => TraceEvent::Tick { cycles },
                });
            }
            id_offset += max_id;
            if self.inter_phase_cycles > 0 && k + 1 < self.phases.len() {
                events.push(TraceEvent::Tick {
                    cycles: self.inter_phase_cycles,
                });
            }
        }
        Trace::from_events(self.name.clone(), events)
            .expect("well-formed phases stay well-formed after renumbering")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn phases_concatenate_and_free_everything() {
        let t = PhaseShiftConfig::churn_to_frag(600).generate(1);
        let s = TraceStats::compute(&t);
        assert_eq!(s.allocs, 600);
        assert_eq!(s.frees, 600);
        assert_eq!(t.final_live_bytes(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = PhaseShiftConfig::churn_to_frag(200).generate(9);
        let b = PhaseShiftConfig::churn_to_frag(200).generate(9);
        assert_eq!(a.events(), b.events());
        let c = PhaseShiftConfig::churn_to_frag(200).generate(10);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn the_shift_widens_the_size_mixture() {
        // Phase 1 sizes stay ≤ 256 (uniform churn); the fragmenter phase
        // reaches far beyond — the shift must be visible in the stats.
        let t = PhaseShiftConfig::churn_to_frag(800).generate(3);
        let s = TraceStats::compute(&t);
        assert!(s.max_size > 256, "max size {}", s.max_size);
        assert!(s.min_size <= 256);
    }

    #[test]
    fn phase_order_matters() {
        let fwd = PhaseShiftConfig::churn_to_frag(200);
        let mut rev = fwd.clone();
        rev.phases.reverse();
        assert_ne!(fwd.generate(5).events(), rev.generate(5).events());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_rejected() {
        let cfg = PhaseShiftConfig {
            name: "empty".into(),
            phases: vec![],
            inter_phase_cycles: 0,
        };
        let _ = cfg.generate(0);
    }
}
