//! Fully configurable synthetic workloads.
//!
//! Used for stress tests, property tests and ablation studies where the
//! workload's size/lifetime mixture must be varied independently of any
//! application structure.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::event::{BlockId, TraceEvent};
use crate::gen::dist::{LifetimeDist, SizeDist};
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Trace name.
    pub name: String,
    /// Number of allocations to perform.
    pub allocs: usize,
    /// Requested-size distribution.
    pub sizes: SizeDist,
    /// Lifetime distribution, in allocation steps.
    pub lifetimes: LifetimeDist,
    /// Application accesses per allocated word (0.0 disables access events).
    pub accesses_per_word: f64,
    /// Emit a `Tick` of this many cycles every `tick_every` allocations
    /// (0 disables ticks).
    pub tick_cycles: u32,
    /// Tick period in allocations.
    pub tick_every: usize,
}

impl SyntheticConfig {
    /// A uniform small-object churn workload.
    pub fn uniform_churn(allocs: usize) -> Self {
        SyntheticConfig {
            name: "synthetic-uniform".to_owned(),
            allocs,
            sizes: SizeDist::Uniform { min: 8, max: 256 },
            lifetimes: LifetimeDist::Geometric { mean: 32.0 },
            accesses_per_word: 2.0,
            tick_cycles: 50,
            tick_every: 16,
        }
    }

    /// A bimodal workload with two hot sizes, like a packet pipeline.
    pub fn bimodal(allocs: usize) -> Self {
        SyntheticConfig {
            name: "synthetic-bimodal".to_owned(),
            allocs,
            sizes: SizeDist::Choice(vec![(64, 0.7), (1024, 0.3)]),
            lifetimes: LifetimeDist::Geometric { mean: 16.0 },
            accesses_per_word: 1.0,
            tick_cycles: 20,
            tick_every: 8,
        }
    }

    /// A fragmentation-hostile workload: widely spread sizes with mixed
    /// lifetimes, the classic worst case for non-coalescing general pools.
    pub fn fragmenter(allocs: usize) -> Self {
        SyntheticConfig {
            name: "synthetic-fragmenter".to_owned(),
            allocs,
            sizes: SizeDist::Exponential {
                mean: 300.0,
                min: 8,
                max: 4096,
            },
            lifetimes: LifetimeDist::Uniform { min: 1, max: 256 },
            accesses_per_word: 0.5,
            tick_cycles: 10,
            tick_every: 32,
        }
    }
}

impl TraceGenerator for SyntheticConfig {
    fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5159_7E71);
        let mut trace = Trace::new(self.name.clone());
        let mut push = |t: &mut Trace, ev: TraceEvent| {
            t.push(ev).expect("generator emits well-formed traces");
        };
        // Min-heap of (death_step, id, size).
        let mut deaths: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();

        for step in 0..self.allocs as u64 {
            // Free everything scheduled to die by now.
            while let Some(Reverse((when, id, size))) = deaths.peek().copied() {
                if when > step {
                    break;
                }
                deaths.pop();
                self.emit_final_access(&mut trace, BlockId(id), size, &mut push);
                push(
                    &mut trace,
                    TraceEvent::Free {
                        tid: crate::event::ThreadId::MAIN,
                        id: BlockId(id),
                    },
                );
            }

            let id = BlockId(step + 1);
            let size = self.sizes.sample(&mut rng);
            push(
                &mut trace,
                TraceEvent::Alloc {
                    tid: crate::event::ThreadId::MAIN,
                    id,
                    size,
                },
            );
            if self.accesses_per_word > 0.0 {
                let words = u64::from(size / 4 + 1);
                let writes = (words as f64 * self.accesses_per_word * 0.6) as u32;
                let reads = (words as f64 * self.accesses_per_word * 0.4) as u32;
                if reads + writes > 0 {
                    push(
                        &mut trace,
                        TraceEvent::Access {
                            tid: crate::event::ThreadId::MAIN,
                            id,
                            reads,
                            writes,
                        },
                    );
                }
            }
            let life = self.lifetimes.sample(&mut rng);
            deaths.push(Reverse((step + life, id.0, size)));

            if self.tick_every > 0 && self.tick_cycles > 0 && step % self.tick_every as u64 == 0 {
                push(
                    &mut trace,
                    TraceEvent::Tick {
                        cycles: self.tick_cycles,
                    },
                );
            }
        }

        // Drain survivors in death order.
        while let Some(Reverse((_, id, size))) = deaths.pop() {
            self.emit_final_access(&mut trace, BlockId(id), size, &mut push);
            push(
                &mut trace,
                TraceEvent::Free {
                    tid: crate::event::ThreadId::MAIN,
                    id: BlockId(id),
                },
            );
        }
        trace
    }
}

impl SyntheticConfig {
    fn emit_final_access(
        &self,
        trace: &mut Trace,
        id: BlockId,
        size: u32,
        push: &mut impl FnMut(&mut Trace, TraceEvent),
    ) {
        if self.accesses_per_word > 0.0 {
            let reads = (f64::from(size / 4 + 1) * self.accesses_per_word * 0.2) as u32;
            if reads > 0 {
                push(
                    trace,
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id,
                        reads,
                        writes: 0,
                    },
                );
            }
        }
    }
}

/// A minimal deterministic workload: allocate `n` blocks of `size` bytes,
/// then free them in allocation order. Useful as a fixture in tests.
pub fn ramp(n: usize, size: u32) -> Trace {
    let mut events = Vec::with_capacity(2 * n);
    for i in 0..n as u64 {
        events.push(TraceEvent::Alloc {
            tid: crate::event::ThreadId::MAIN,
            id: BlockId(i + 1),
            size,
        });
    }
    for i in 0..n as u64 {
        events.push(TraceEvent::Free {
            tid: crate::event::ThreadId::MAIN,
            id: BlockId(i + 1),
        });
    }
    Trace::from_events("ramp", events).expect("ramp trace is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn generates_requested_alloc_count() {
        let t = SyntheticConfig::uniform_churn(500).generate(1);
        let s = TraceStats::compute(&t);
        assert_eq!(s.allocs, 500);
        assert_eq!(s.frees, 500);
    }

    #[test]
    fn bimodal_has_two_sizes() {
        let t = SyntheticConfig::bimodal(1_000).generate(2);
        let s = TraceStats::compute(&t);
        assert_eq!(s.per_size.len(), 2);
        assert_eq!(s.dominant_sizes(1), vec![64]);
    }

    #[test]
    fn lifetimes_bound_live_set() {
        let cfg = SyntheticConfig {
            lifetimes: LifetimeDist::Constant(4),
            ..SyntheticConfig::uniform_churn(1_000)
        };
        let t = cfg.generate(3);
        let s = TraceStats::compute(&t);
        assert!(s.peak_live_blocks <= 6, "peak {}", s.peak_live_blocks);
    }

    #[test]
    fn zero_access_rate_emits_no_access_events() {
        let cfg = SyntheticConfig {
            accesses_per_word: 0.0,
            ..SyntheticConfig::uniform_churn(100)
        };
        let t = cfg.generate(4);
        assert!(!t.iter().any(|e| matches!(e, TraceEvent::Access { .. })));
    }

    #[test]
    fn ramp_shape() {
        let t = ramp(10, 64);
        let s = TraceStats::compute(&t);
        assert_eq!(s.allocs, 10);
        assert_eq!(s.peak_live_blocks, 10);
        assert_eq!(s.peak_live_bytes, 640);
        assert_eq!(t.final_live_bytes(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticConfig::fragmenter(200).generate(9);
        let b = SyntheticConfig::fragmenter(200).generate(9);
        assert_eq!(a.events(), b.events());
    }
}
