//! Server-workload generator: many clients, worker threads, shared pools.
//!
//! The paper's flow tunes allocators for single-threaded embedded
//! applications; its parallel-EA successor targets *server* software,
//! whose dynamic-memory behaviour differs in kind, not just in volume:
//!
//! * **request-scoped objects** — headers and parse nodes allocated and
//!   freed by the same worker thread within one request (the per-thread
//!   fast path a contention-aware allocator must keep free);
//! * **connection-scoped objects** — session state allocated on accept
//!   by the acceptor thread and freed on close, living across thousands
//!   of requests;
//! * **producer/consumer lifetimes** — response buffers allocated by a
//!   worker but freed by the I/O thread once the bytes are on the wire,
//!   so frees legitimately cross threads;
//! * **diurnal + spike traffic** — request rate swings slowly over a
//!   simulated day (triangle-wave modulation, kept free of
//!   platform-dependent transcendentals so traces stay byte-reproducible)
//!   with occasional flash-crowd bursts.
//!
//! Thread ids: tid 0 is the acceptor, tids `1..=workers` handle
//! requests, and tid `workers + 1` is the I/O (sender) thread.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::{BlockId, ThreadId, TraceEvent};
use crate::gen::dist::{exponential, SizeDist};
use crate::gen::TraceGenerator;
use crate::trace::Trace;

/// Configuration of the server-mix generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerMixConfig {
    /// Total requests to serve.
    pub requests: usize,
    /// Worker threads handling requests (tids `1..=workers`, ≥ 1).
    pub workers: u32,
    /// Concurrent connections (each holds one session buffer).
    pub connections: usize,
    /// Request-scoped parse nodes allocated per request.
    pub objects_per_request: usize,
    /// Parse-node size mixture.
    pub request_sizes: SizeDist,
    /// Response-buffer size mixture.
    pub response_sizes: SizeDist,
    /// Close one connection and accept a new one every this many requests
    /// (0 disables churn).
    pub connection_churn_every: usize,
    /// Mean requests per arrival burst at baseline load.
    pub base_burst: f64,
    /// Bursts per simulated day; the rate follows a triangle wave over
    /// this period (0 = flat load).
    pub diurnal_period: usize,
    /// Peak deviation of the diurnal wave from baseline, as a fraction
    /// in `[0, 1)` — rate swings between `1 - a` and `1 + a`.
    pub diurnal_amplitude: f64,
    /// Every this-many-th burst is a flash-crowd spike (0 = never).
    pub spike_every: usize,
    /// Burst-size multiplier during a spike.
    pub spike_multiplier: f64,
    /// Responses are freed by the I/O thread this many requests after
    /// being produced (the cross-thread producer/consumer lag).
    pub response_linger: usize,
    /// Compute cycles per served request.
    pub cycles_per_request: u32,
    /// Compute cycles of idle time between bursts.
    pub idle_cycles: u32,
}

impl ServerMixConfig {
    /// A small configuration for unit tests and doc examples
    /// (~1.2 k requests, 4 workers).
    pub fn small() -> Self {
        ServerMixConfig {
            requests: 1_200,
            workers: 4,
            ..Self::paper()
        }
    }

    /// The case-study configuration (~4 k requests, 8 workers, full
    /// diurnal cycle plus flash crowds).
    pub fn paper() -> Self {
        ServerMixConfig {
            requests: 4_000,
            workers: 8,
            connections: 48,
            objects_per_request: 3,
            request_sizes: SizeDist::Choice(vec![
                (32, 0.50), // parse-tree nodes
                (64, 0.30), // header fields
                (96, 0.20), // cookie / query-string fragments
            ]),
            response_sizes: SizeDist::Choice(vec![
                (512, 0.40),   // small API replies
                (2_048, 0.45), // HTML pages
                (8_192, 0.15), // asset chunks
            ]),
            connection_churn_every: 16,
            base_burst: 10.0,
            diurnal_period: 48,
            diurnal_amplitude: 0.6,
            spike_every: 19,
            spike_multiplier: 3.0,
            response_linger: 32,
            cycles_per_request: 3_200,
            idle_cycles: 1_600,
        }
    }

    /// The diurnal rate multiplier for burst number `n`: a triangle wave
    /// between `1 - amplitude` and `1 + amplitude`, built from exact
    /// rational arithmetic so the trace never depends on a platform's
    /// `sin` implementation.
    fn diurnal_factor(&self, n: usize) -> f64 {
        if self.diurnal_period == 0 || self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let pos = n % self.diurnal_period;
        // 0 at the trough (pos 0), 1 at the peak (pos period/2), back to 0.
        let tri = 1.0 - (2.0 * pos as f64 / self.diurnal_period as f64 - 1.0).abs();
        1.0 - self.diurnal_amplitude + 2.0 * self.diurnal_amplitude * tri
    }
}

/// Request headers are one fixed-size block; session state is one
/// 384-byte context per connection.
const REQUEST_HEADER_SIZE: u32 = 128;
const SESSION_SIZE: u32 = 384;

/// A response in flight to the I/O thread.
struct InFlight {
    release_at: usize,
    id: BlockId,
    size: u32,
}

impl TraceGenerator for ServerMixConfig {
    fn generate(&self, seed: u64) -> Trace {
        assert!(self.workers >= 1, "a server needs at least one worker");
        assert!(self.connections >= 1, "a server needs a connection");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E17_ED01);
        let mut trace = Trace::new("server-mix");
        let mut next_id = 0u64;
        let mut fresh = || {
            next_id += 1;
            BlockId(next_id)
        };
        let mut push = |t: &mut Trace, ev: TraceEvent| {
            t.push(ev).expect("generator emits well-formed traces");
        };
        let acceptor = ThreadId::MAIN;
        let io_tid = ThreadId(self.workers + 1);

        // Accept the initial connections: session state allocated by the
        // acceptor, touched by whichever workers serve the connection.
        let mut sessions = Vec::with_capacity(self.connections);
        for _ in 0..self.connections {
            let id = fresh();
            push(&mut trace, TraceEvent::alloc_on(acceptor, id, SESSION_SIZE));
            push(&mut trace, TraceEvent::access_on(acceptor, id, 4, 24));
            sessions.push(id);
        }

        let mut in_flight: Vec<InFlight> = Vec::new();
        let mut served = 0usize;
        let mut burst_no = 0usize;
        while served < self.requests {
            let mut rate = self.diurnal_factor(burst_no);
            if self.spike_every > 0 && burst_no % self.spike_every == self.spike_every - 1 {
                rate *= self.spike_multiplier;
            }
            burst_no += 1;
            let cap = (4.0 * self.base_burst * self.spike_multiplier.max(1.0)) as usize + 1;
            let burst = ((exponential(&mut rng, self.base_burst) * rate).round() as usize)
                .clamp(1, cap)
                .min(self.requests - served);

            for _ in 0..burst {
                let now = served;
                served += 1;

                // The I/O thread drains responses whose bytes went out.
                flush_sent(&mut trace, &mut in_flight, now, io_tid, &mut push);

                // Connection churn: the acceptor closes one connection
                // and accepts a replacement, interleaving long-lived
                // session blocks between request blocks.
                if self.connection_churn_every > 0
                    && now.is_multiple_of(self.connection_churn_every)
                {
                    let slot = rng.gen_range(0..sessions.len());
                    let old = sessions[slot];
                    push(&mut trace, TraceEvent::access_on(acceptor, old, 8, 0));
                    push(&mut trace, TraceEvent::free_on(acceptor, old));
                    let id = fresh();
                    push(&mut trace, TraceEvent::alloc_on(acceptor, id, SESSION_SIZE));
                    push(&mut trace, TraceEvent::access_on(acceptor, id, 4, 24));
                    sessions[slot] = id;
                }

                // A worker picks the request up.
                let worker = ThreadId(1 + rng.gen_range(0..self.workers));
                let session = sessions[rng.gen_range(0..sessions.len())];

                // Parse: request-scoped header + nodes, all on the worker.
                let header = fresh();
                push(
                    &mut trace,
                    TraceEvent::alloc_on(worker, header, REQUEST_HEADER_SIZE),
                );
                push(&mut trace, TraceEvent::access_on(worker, header, 10, 6));
                let mut nodes = Vec::with_capacity(self.objects_per_request);
                for _ in 0..self.objects_per_request {
                    let id = fresh();
                    let size = self.request_sizes.sample(&mut rng);
                    push(&mut trace, TraceEvent::alloc_on(worker, id, size));
                    push(&mut trace, TraceEvent::access_on(worker, id, 3, 3));
                    nodes.push(id);
                }
                push(&mut trace, TraceEvent::access_on(worker, session, 6, 2));

                // Produce the response; the worker fills it, the I/O
                // thread frees it later (cross-thread lifetime).
                let response = fresh();
                let response_size = self.response_sizes.sample(&mut rng);
                push(
                    &mut trace,
                    TraceEvent::alloc_on(worker, response, response_size),
                );
                push(
                    &mut trace,
                    TraceEvent::access_on(worker, response, 2, response_size / 32 + 1),
                );
                push(
                    &mut trace,
                    TraceEvent::Tick {
                        cycles: self.cycles_per_request,
                    },
                );
                in_flight.push(InFlight {
                    release_at: now + self.response_linger,
                    id: response,
                    size: response_size,
                });

                // Request teardown: the worker frees its own scratch —
                // the same-thread fast path.
                for id in nodes.into_iter().rev() {
                    push(&mut trace, TraceEvent::free_on(worker, id));
                }
                push(&mut trace, TraceEvent::free_on(worker, header));
            }

            push(
                &mut trace,
                TraceEvent::Tick {
                    cycles: self.idle_cycles,
                },
            );
        }

        // Drain: flush every response still queued, close all connections.
        flush_sent(&mut trace, &mut in_flight, usize::MAX, io_tid, &mut push);
        for id in sessions {
            push(&mut trace, TraceEvent::free_on(acceptor, id));
        }
        trace
    }
}

/// The I/O thread sends and frees every response due by `now`, in FIFO
/// order.
fn flush_sent(
    trace: &mut Trace,
    in_flight: &mut Vec<InFlight>,
    now: usize,
    io_tid: ThreadId,
    push: &mut impl FnMut(&mut Trace, TraceEvent),
) {
    let mut i = 0;
    while i < in_flight.len() {
        if in_flight[i].release_at <= now {
            let sent = in_flight.remove(i);
            push(
                trace,
                TraceEvent::access_on(io_tid, sent.id, sent.size / 64 + 1, 0),
            );
            push(trace, TraceEvent::free_on(io_tid, sent.id));
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledTrace;
    use crate::stats::TraceStats;
    use std::collections::HashSet;

    #[test]
    fn generation_is_seed_deterministic() {
        let a = ServerMixConfig::small().generate(7);
        let b = ServerMixConfig::small().generate(7);
        assert_eq!(a.events(), b.events());
        let c = ServerMixConfig::small().generate(8);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn everything_is_freed() {
        let t = ServerMixConfig::small().generate(2);
        assert_eq!(t.final_live_bytes(), 0);
        assert_eq!(t.live_blocks().count(), 0);
    }

    #[test]
    fn trace_is_threaded_with_the_configured_thread_set() {
        let cfg = ServerMixConfig::small();
        let t = cfg.generate(3);
        let tids: HashSet<u32> = t
            .iter()
            .filter_map(|e| e.thread_id())
            .map(|t| t.0)
            .collect();
        assert!(tids.contains(&0), "acceptor must appear");
        assert!(
            tids.contains(&(cfg.workers + 1)),
            "the I/O thread must appear"
        );
        assert!(tids.len() as u32 > cfg.workers, "tids observed: {tids:?}");
        assert!(CompiledTrace::compile(&t).is_threaded());
    }

    #[test]
    fn responses_are_freed_cross_thread() {
        let cfg = ServerMixConfig::small();
        let t = cfg.generate(4);
        let io = cfg.workers + 1;
        // Track each live block's allocating tid; at its free, compare.
        let mut owner = std::collections::HashMap::new();
        let mut crossings = 0usize;
        for ev in &t {
            match *ev {
                TraceEvent::Alloc { id, tid, .. } => {
                    owner.insert(id, tid);
                }
                TraceEvent::Free { id, tid } => {
                    let from = owner.remove(&id).expect("freed block was live");
                    if from != tid {
                        assert_eq!(tid.0, io, "only the I/O thread frees remotely");
                        crossings += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(
            crossings > cfg.requests / 2,
            "most responses cross threads: {crossings}"
        );
    }

    #[test]
    fn diurnal_factor_is_a_bounded_triangle_wave() {
        let cfg = ServerMixConfig::paper();
        let lo = 1.0 - cfg.diurnal_amplitude;
        let hi = 1.0 + cfg.diurnal_amplitude;
        for n in 0..3 * cfg.diurnal_period {
            let f = cfg.diurnal_factor(n);
            assert!((lo..=hi).contains(&f), "factor {f} at burst {n}");
        }
        // Trough at the period boundary, peak mid-period.
        assert!((cfg.diurnal_factor(0) - lo).abs() < 1e-12);
        assert!((cfg.diurnal_factor(cfg.diurnal_period / 2) - hi).abs() < 1e-12);
        // Period 0 = flat load.
        let flat = ServerMixConfig {
            diurnal_period: 0,
            ..cfg
        };
        assert_eq!(flat.diurnal_factor(17), 1.0);
    }

    #[test]
    fn dominant_sizes_cover_the_request_pools() {
        let t = ServerMixConfig::small().generate(5);
        let s = TraceStats::compute(&t);
        assert!(
            s.size_stat(REQUEST_HEADER_SIZE).is_some(),
            "headers must occur"
        );
        assert!(s.size_stat(SESSION_SIZE).is_some(), "sessions must occur");
        assert!(s.size_stat(32).is_some(), "parse nodes must occur");
        assert!(s.size_stat(2_048).is_some(), "responses must occur");
    }
}
