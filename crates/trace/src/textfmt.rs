//! Line-oriented text serialization of traces.
//!
//! The format mirrors the paper's tool flow: profiling output is written as
//! plain text that downstream scripts (the paper used Perl/O'Caml) can parse
//! quickly. One event per line:
//!
//! ```text
//! dmxtrace v1 <name>
//! # comment
//! a <id> <size>        allocation
//! f <id>               free
//! r <id> <reads> <writes>   application accesses
//! k <cycles>           compute tick
//! ```
//!
//! Threaded traces use the `v2` header and append the issuing thread id as
//! the last field of `a`/`f`/`r` records:
//!
//! ```text
//! dmxtrace v2 <name>
//! a <id> <size> <tid>
//! f <id> <tid>
//! r <id> <reads> <writes> <tid>
//! k <cycles>
//! ```
//!
//! The writer emits `v1` whenever every event runs on tid 0, so
//! single-threaded traces serialize byte-identically to the original
//! format. `v1` inputs parse with every tid defaulting to 0; `v2` inputs
//! may omit the tid field (it also defaults to 0).

use crate::error::ParseError;
use crate::event::{BlockId, ThreadId, TraceEvent};
use crate::trace::Trace;

const HEADER_V1: &str = "dmxtrace v1";
const HEADER_V2: &str = "dmxtrace v2";

/// `true` when any event carries a non-zero thread id.
fn is_threaded(trace: &Trace) -> bool {
    trace
        .iter()
        .any(|ev| ev.thread_id().is_some_and(|tid| tid.0 != 0))
}

/// Serializes `trace` to the text format.
///
/// Single-threaded traces (all tids 0) serialize to the `v1` format,
/// byte-identical to writers predating thread support; traces with any
/// non-zero tid use the `v2` format carrying a tid per record.
pub fn to_string(trace: &Trace) -> String {
    let threaded = is_threaded(trace);
    let mut out = String::with_capacity(16 + trace.len() * 12);
    out.push_str(if threaded { HEADER_V2 } else { HEADER_V1 });
    out.push(' ');
    out.push_str(trace.name());
    out.push('\n');
    for ev in trace {
        match *ev {
            TraceEvent::Alloc { id, size, tid } => {
                if threaded {
                    out.push_str(&format!("a {} {} {}\n", id.0, size, tid.0));
                } else {
                    out.push_str(&format!("a {} {}\n", id.0, size));
                }
            }
            TraceEvent::Free { id, tid } => {
                if threaded {
                    out.push_str(&format!("f {} {}\n", id.0, tid.0));
                } else {
                    out.push_str(&format!("f {}\n", id.0));
                }
            }
            TraceEvent::Access {
                id,
                reads,
                writes,
                tid,
            } => {
                if threaded {
                    out.push_str(&format!("r {} {} {} {}\n", id.0, reads, writes, tid.0));
                } else {
                    out.push_str(&format!("r {} {} {}\n", id.0, reads, writes));
                }
            }
            TraceEvent::Tick { cycles } => {
                out.push_str(&format!("k {cycles}\n"));
            }
        }
    }
    out
}

/// Parses a trace from the text format (`v1` or `v2` header).
///
/// # Errors
///
/// [`ParseError::BadHeader`] if the first line is not a `dmxtrace v1` or
/// `dmxtrace v2` header; [`ParseError::Malformed`] (with a 1-based line
/// number) for a syntactically bad line; [`ParseError::Invalid`] if the
/// events violate trace well-formedness.
pub fn from_str(input: &str) -> Result<Trace, ParseError> {
    let mut lines = input.lines().enumerate();
    let (name, v2) = match lines.next() {
        Some((_, first)) => {
            let (rest, v2) = match first.strip_prefix(HEADER_V2) {
                Some(rest) => (rest, true),
                None => (
                    first.strip_prefix(HEADER_V1).ok_or(ParseError::BadHeader)?,
                    false,
                ),
            };
            let name = rest.trim();
            if name.is_empty() {
                return Err(ParseError::BadHeader);
            }
            (name.to_owned(), v2)
        }
        None => return Err(ParseError::BadHeader),
    };

    let mut trace = Trace::new(name);
    for (lineno, line) in lines {
        let at = lineno + 1; // 1-based
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let tag = fields.next().expect("non-empty line has a first field");
        let event = match tag {
            "a" => TraceEvent::Alloc {
                id: BlockId(parse_u64(fields.next(), at, "alloc id")?),
                size: parse_u32(fields.next(), at, "alloc size")?,
                tid: parse_tid(&mut fields, v2, at)?,
            },
            "f" => TraceEvent::Free {
                id: BlockId(parse_u64(fields.next(), at, "free id")?),
                tid: parse_tid(&mut fields, v2, at)?,
            },
            "r" => TraceEvent::Access {
                id: BlockId(parse_u64(fields.next(), at, "access id")?),
                reads: parse_u32(fields.next(), at, "access reads")?,
                writes: parse_u32(fields.next(), at, "access writes")?,
                tid: parse_tid(&mut fields, v2, at)?,
            },
            "k" => TraceEvent::Tick {
                cycles: parse_u32(fields.next(), at, "tick cycles")?,
            },
            other => {
                return Err(ParseError::Malformed {
                    at,
                    what: format!("unknown event tag `{other}`"),
                })
            }
        };
        if fields.next().is_some() {
            return Err(ParseError::Malformed {
                at,
                what: "trailing fields".to_owned(),
            });
        }
        trace.push(event)?;
    }
    Ok(trace)
}

fn parse_u64(field: Option<&str>, at: usize, what: &str) -> Result<u64, ParseError> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| ParseError::Malformed {
            at,
            what: format!("missing or invalid {what}"),
        })
}

fn parse_u32(field: Option<&str>, at: usize, what: &str) -> Result<u32, ParseError> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| ParseError::Malformed {
            at,
            what: format!("missing or invalid {what}"),
        })
}

/// The optional trailing thread-id field: only `v2` records may carry one,
/// and a missing tid defaults to 0 in both versions.
fn parse_tid(
    fields: &mut std::str::SplitAsciiWhitespace<'_>,
    v2: bool,
    at: usize,
) -> Result<ThreadId, ParseError> {
    if !v2 {
        return Ok(ThreadId::MAIN);
    }
    match fields.next() {
        None => Ok(ThreadId::MAIN),
        Some(f) => f.parse().map(ThreadId).map_err(|_| ParseError::Malformed {
            at,
            what: "invalid thread id".to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_events(
            "sample",
            vec![
                TraceEvent::alloc(BlockId(1), 74),
                TraceEvent::access(BlockId(1), 3, 1),
                TraceEvent::tick(42),
                TraceEvent::free(BlockId(1)),
            ],
        )
        .unwrap()
    }

    fn threaded_sample() -> Trace {
        Trace::from_events(
            "threaded",
            vec![
                TraceEvent::alloc_on(ThreadId(1), BlockId(1), 74),
                TraceEvent::access_on(ThreadId(1), BlockId(1), 3, 1),
                TraceEvent::tick(42),
                TraceEvent::free_on(ThreadId(2), BlockId(1)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let s = to_string(&t);
        let back = from_str(&s).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn single_threaded_traces_serialize_as_v1() {
        let s = to_string(&sample());
        assert!(s.starts_with("dmxtrace v1 sample\n"));
        assert_eq!(s, "dmxtrace v1 sample\na 1 74\nr 1 3 1\nk 42\nf 1\n");
    }

    #[test]
    fn threaded_roundtrip_uses_v2() {
        let t = threaded_sample();
        let s = to_string(&t);
        assert!(s.starts_with("dmxtrace v2 threaded\n"));
        assert_eq!(
            s,
            "dmxtrace v2 threaded\na 1 74 1\nr 1 3 1 1\nk 42\nf 1 2\n"
        );
        let back = from_str(&s).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn v1_reads_default_to_tid_zero() {
        let t = from_str("dmxtrace v1 t\na 1 8\nf 1\n").unwrap();
        assert!(t
            .iter()
            .all(|ev| ev.thread_id().is_none_or(|tid| tid == ThreadId::MAIN)));
    }

    #[test]
    fn v2_tid_field_is_optional() {
        let t = from_str("dmxtrace v2 t\na 1 8\nf 1 3\n").unwrap();
        assert_eq!(t.events()[0].thread_id(), Some(ThreadId::MAIN));
        assert_eq!(t.events()[1].thread_id(), Some(ThreadId(3)));
    }

    #[test]
    fn v1_rejects_tid_field_as_trailing() {
        let err = from_str("dmxtrace v1 t\na 1 8 2\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn v2_rejects_bad_tid() {
        let err = from_str("dmxtrace v2 t\na 1 8 zap\n").unwrap_err();
        match err {
            ParseError::Malformed { at, what } => {
                assert_eq!(at, 2);
                assert!(what.contains("thread id"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn header_required() {
        assert_eq!(from_str(""), Err(ParseError::BadHeader));
        assert_eq!(from_str("not a header\n"), Err(ParseError::BadHeader));
        assert_eq!(from_str("dmxtrace v1 \n"), Err(ParseError::BadHeader));
        assert_eq!(from_str("dmxtrace v2 \n"), Err(ParseError::BadHeader));
        assert_eq!(from_str("dmxtrace v3 t\n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = from_str("dmxtrace v1 t\n# hi\n\na 1 8\nf 1\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = from_str("dmxtrace v1 t\na 1 8\nx 2\n").unwrap_err();
        match err {
            ParseError::Malformed { at, what } => {
                assert_eq!(at, 3);
                assert!(what.contains('x'));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_field_reported() {
        let err = from_str("dmxtrace v1 t\na 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { at: 2, .. }));
    }

    #[test]
    fn trailing_fields_rejected() {
        let err = from_str("dmxtrace v1 t\nf 1 9\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
        let err = from_str("dmxtrace v2 t\nf 1 9 9\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn semantic_violations_surface_as_invalid() {
        let err = from_str("dmxtrace v1 t\nf 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let back = from_str(&to_string(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }
}
