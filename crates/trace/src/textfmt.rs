//! Line-oriented text serialization of traces.
//!
//! The format mirrors the paper's tool flow: profiling output is written as
//! plain text that downstream scripts (the paper used Perl/O'Caml) can parse
//! quickly. One event per line:
//!
//! ```text
//! dmxtrace v1 <name>
//! # comment
//! a <id> <size>        allocation
//! f <id>               free
//! r <id> <reads> <writes>   application accesses
//! k <cycles>           compute tick
//! ```

use crate::error::ParseError;
use crate::event::{BlockId, TraceEvent};
use crate::trace::Trace;

const HEADER: &str = "dmxtrace v1";

/// Serializes `trace` to the text format.
pub fn to_string(trace: &Trace) -> String {
    let mut out = String::with_capacity(16 + trace.len() * 12);
    out.push_str(HEADER);
    out.push(' ');
    out.push_str(trace.name());
    out.push('\n');
    for ev in trace {
        match *ev {
            TraceEvent::Alloc { id, size } => {
                out.push_str(&format!("a {} {}\n", id.0, size));
            }
            TraceEvent::Free { id } => {
                out.push_str(&format!("f {}\n", id.0));
            }
            TraceEvent::Access { id, reads, writes } => {
                out.push_str(&format!("r {} {} {}\n", id.0, reads, writes));
            }
            TraceEvent::Tick { cycles } => {
                out.push_str(&format!("k {cycles}\n"));
            }
        }
    }
    out
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// [`ParseError::BadHeader`] if the first line is not a `dmxtrace v1`
/// header; [`ParseError::Malformed`] (with a 1-based line number) for a
/// syntactically bad line; [`ParseError::Invalid`] if the events violate
/// trace well-formedness.
pub fn from_str(input: &str) -> Result<Trace, ParseError> {
    let mut lines = input.lines().enumerate();
    let name = match lines.next() {
        Some((_, first)) => {
            let rest = first.strip_prefix(HEADER).ok_or(ParseError::BadHeader)?;
            let name = rest.trim();
            if name.is_empty() {
                return Err(ParseError::BadHeader);
            }
            name.to_owned()
        }
        None => return Err(ParseError::BadHeader),
    };

    let mut trace = Trace::new(name);
    for (lineno, line) in lines {
        let at = lineno + 1; // 1-based
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let tag = fields.next().expect("non-empty line has a first field");
        let event = match tag {
            "a" => TraceEvent::Alloc {
                id: BlockId(parse_u64(fields.next(), at, "alloc id")?),
                size: parse_u32(fields.next(), at, "alloc size")?,
            },
            "f" => TraceEvent::Free {
                id: BlockId(parse_u64(fields.next(), at, "free id")?),
            },
            "r" => TraceEvent::Access {
                id: BlockId(parse_u64(fields.next(), at, "access id")?),
                reads: parse_u32(fields.next(), at, "access reads")?,
                writes: parse_u32(fields.next(), at, "access writes")?,
            },
            "k" => TraceEvent::Tick {
                cycles: parse_u32(fields.next(), at, "tick cycles")?,
            },
            other => {
                return Err(ParseError::Malformed {
                    at,
                    what: format!("unknown event tag `{other}`"),
                })
            }
        };
        if fields.next().is_some() {
            return Err(ParseError::Malformed {
                at,
                what: "trailing fields".to_owned(),
            });
        }
        trace.push(event)?;
    }
    Ok(trace)
}

fn parse_u64(field: Option<&str>, at: usize, what: &str) -> Result<u64, ParseError> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| ParseError::Malformed {
            at,
            what: format!("missing or invalid {what}"),
        })
}

fn parse_u32(field: Option<&str>, at: usize, what: &str) -> Result<u32, ParseError> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| ParseError::Malformed {
            at,
            what: format!("missing or invalid {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_events(
            "sample",
            vec![
                TraceEvent::Alloc {
                    id: BlockId(1),
                    size: 74,
                },
                TraceEvent::Access {
                    id: BlockId(1),
                    reads: 3,
                    writes: 1,
                },
                TraceEvent::Tick { cycles: 42 },
                TraceEvent::Free { id: BlockId(1) },
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let s = to_string(&t);
        let back = from_str(&s).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn header_required() {
        assert_eq!(from_str(""), Err(ParseError::BadHeader));
        assert_eq!(from_str("not a header\n"), Err(ParseError::BadHeader));
        assert_eq!(from_str("dmxtrace v1 \n"), Err(ParseError::BadHeader));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let t = from_str("dmxtrace v1 t\n# hi\n\na 1 8\nf 1\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = from_str("dmxtrace v1 t\na 1 8\nx 2\n").unwrap_err();
        match err {
            ParseError::Malformed { at, what } => {
                assert_eq!(at, 3);
                assert!(what.contains('x'));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_field_reported() {
        let err = from_str("dmxtrace v1 t\na 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { at: 2, .. }));
    }

    #[test]
    fn trailing_fields_rejected() {
        let err = from_str("dmxtrace v1 t\nf 1 9\n").unwrap_err();
        assert!(matches!(err, ParseError::Malformed { .. }));
    }

    #[test]
    fn semantic_violations_surface_as_invalid() {
        let err = from_str("dmxtrace v1 t\nf 1\n").unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new("empty");
        let back = from_str(&to_string(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
    }
}
