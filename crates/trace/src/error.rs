//! Error types for trace construction and parsing.

use std::error::Error;
use std::fmt;

use crate::event::BlockId;

/// A well-formedness violation while building a [`Trace`](crate::Trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An `Alloc` event requested zero bytes.
    ZeroSizeAlloc {
        /// Index of the offending event.
        at: usize,
        /// The block id of the allocation.
        id: BlockId,
    },
    /// An `Alloc` event reused an id that is still live.
    DuplicateAlloc {
        /// Index of the offending event.
        at: usize,
        /// The reused id.
        id: BlockId,
    },
    /// A `Free` event named an id that is not live.
    FreeOfDeadBlock {
        /// Index of the offending event.
        at: usize,
        /// The dead id.
        id: BlockId,
    },
    /// An `Access` event named an id that is not live.
    AccessToDeadBlock {
        /// Index of the offending event.
        at: usize,
        /// The dead id.
        id: BlockId,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ZeroSizeAlloc { at, id } => {
                write!(f, "event {at}: zero-size allocation of block {id}")
            }
            TraceError::DuplicateAlloc { at, id } => {
                write!(f, "event {at}: allocation of live block {id}")
            }
            TraceError::FreeOfDeadBlock { at, id } => {
                write!(f, "event {at}: free of dead block {id}")
            }
            TraceError::AccessToDeadBlock { at, id } => {
                write!(f, "event {at}: access to dead block {id}")
            }
        }
    }
}

impl Error for TraceError {}

/// An invalid request against a compiled trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// A prefix fraction outside `(0, 1]` was requested.
    PrefixFractionOutOfRange {
        /// The offending fraction.
        fraction: f64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::PrefixFractionOutOfRange { fraction } => {
                write!(f, "prefix fraction must be in (0, 1], got {fraction}")
            }
        }
    }
}

impl Error for CompileError {}

/// A syntax or semantic error while parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The input did not start with the expected format header.
    BadHeader,
    /// A line (text format) or record (binary format) could not be decoded.
    Malformed {
        /// 1-based line number (text) or byte offset (binary).
        at: usize,
        /// What went wrong.
        what: String,
    },
    /// The decoded events violate trace well-formedness.
    Invalid(TraceError),
    /// The binary input ended in the middle of a record.
    Truncated,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadHeader => f.write_str("missing or unsupported trace header"),
            ParseError::Malformed { at, what } => write!(f, "at {at}: {what}"),
            ParseError::Invalid(e) => write!(f, "invalid trace: {e}"),
            ParseError::Truncated => f.write_str("truncated trace input"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ParseError {
    fn from(e: TraceError) -> Self {
        ParseError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = TraceError::FreeOfDeadBlock {
            at: 17,
            id: BlockId(3),
        };
        assert!(e.to_string().contains("17"));
        let p = ParseError::Malformed {
            at: 4,
            what: "bad size".into(),
        };
        assert!(p.to_string().contains("bad size"));
    }

    #[test]
    fn parse_error_wraps_trace_error() {
        let e: ParseError = TraceError::ZeroSizeAlloc {
            at: 0,
            id: BlockId(1),
        }
        .into();
        assert!(matches!(e, ParseError::Invalid(_)));
        assert!(Error::source(&e).is_some());
    }
}
