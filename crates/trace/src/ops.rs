//! Trace transformations: composing and reshaping workloads.
//!
//! Embedded designs often run several dynamic applications on one platform
//! (the paper's domain pairs a network stack with multimedia codecs);
//! these helpers build such combined workloads from individual traces, and
//! reshape traces for sensitivity studies.

use std::collections::HashMap;

use crate::error::TraceError;
use crate::event::{BlockId, TraceEvent};
use crate::trace::Trace;

/// Interleaves several traces round-robin (one event from each in turn)
/// into a single well-formed trace, remapping block ids so the inputs
/// cannot collide.
///
/// The result models concurrent applications sharing one allocator. Input
/// order is preserved within each trace.
///
/// # Errors
///
/// Returns [`TraceError`] if a combined event sequence is ill-formed —
/// impossible for well-formed inputs, since ids are remapped into disjoint
/// ranges.
pub fn merge_round_robin(name: impl Into<String>, traces: &[&Trace]) -> Result<Trace, TraceError> {
    let mut merged = Trace::new(name);
    let mut cursors = vec![0usize; traces.len()];
    // Disjoint id spaces: trace i's ids are offset into its own window.
    let mut remap: Vec<HashMap<BlockId, BlockId>> = vec![HashMap::new(); traces.len()];
    let mut next_id = 1u64;

    loop {
        let mut progressed = false;
        for (ti, trace) in traces.iter().enumerate() {
            let Some(event) = trace.events().get(cursors[ti]) else {
                continue;
            };
            cursors[ti] += 1;
            progressed = true;
            let mapped = match *event {
                TraceEvent::Alloc { id, size, .. } => {
                    let new = BlockId(next_id);
                    next_id += 1;
                    remap[ti].insert(id, new);
                    TraceEvent::Alloc {
                        tid: crate::event::ThreadId::MAIN,
                        id: new,
                        size,
                    }
                }
                TraceEvent::Free { id, .. } => {
                    let new = remap[ti].remove(&id).expect("input trace is well-formed");
                    TraceEvent::Free {
                        tid: crate::event::ThreadId::MAIN,
                        id: new,
                    }
                }
                TraceEvent::Access {
                    id, reads, writes, ..
                } => {
                    let new = *remap[ti].get(&id).expect("input trace is well-formed");
                    TraceEvent::Access {
                        tid: crate::event::ThreadId::MAIN,
                        id: new,
                        reads,
                        writes,
                    }
                }
                tick @ TraceEvent::Tick { .. } => tick,
            };
            merged.push(mapped)?;
        }
        if !progressed {
            return Ok(merged);
        }
    }
}

/// Scales every allocation size by `factor` (rounding up, minimum 1 byte).
/// Useful for sensitivity studies ("what if all buffers were 2× bigger?").
///
/// # Panics
///
/// Panics if `factor` is not finite and positive.
pub fn scale_sizes(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor > 0.0,
        "scale factor must be positive"
    );
    let mut out = Trace::new(format!("{}-x{factor}", trace.name()));
    for ev in trace {
        let mapped = match *ev {
            TraceEvent::Alloc { id, size, .. } => TraceEvent::Alloc {
                tid: crate::event::ThreadId::MAIN,
                id,
                size: ((f64::from(size) * factor).ceil() as u32).max(1),
            },
            other => other,
        };
        out.push(mapped).expect("scaling preserves well-formedness");
    }
    out
}

/// Keeps only the first `n` events, then frees every block still live —
/// a well-formed prefix of the workload.
pub fn truncate(trace: &Trace, n: usize) -> Trace {
    let mut out = Trace::new(format!("{}-head{n}", trace.name()));
    for ev in trace.iter().take(n) {
        out.push(*ev)
            .expect("prefix of well-formed trace is well-formed");
    }
    let live: Vec<BlockId> = out.live_blocks().map(|(id, _)| id).collect();
    for id in live {
        out.push(TraceEvent::Free {
            tid: crate::event::ThreadId::MAIN,
            id,
        })
        .expect("freeing live blocks is well-formed");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{ramp, EasyportConfig, TraceGenerator, VtcConfig};
    use crate::stats::TraceStats;

    #[test]
    fn merge_preserves_event_totals() {
        let a = ramp(10, 64);
        let b = ramp(5, 128);
        let m = merge_round_robin("both", &[&a, &b]).unwrap();
        assert_eq!(m.len(), a.len() + b.len());
        let stats = TraceStats::compute(&m);
        assert_eq!(stats.allocs, 15);
        assert_eq!(stats.frees, 15);
        assert_eq!(m.final_live_bytes(), 0);
    }

    #[test]
    fn merge_remaps_colliding_ids() {
        // Both ramps use ids 1..=10 — the merge must keep them apart.
        let a = ramp(10, 64);
        let b = ramp(10, 128);
        let m = merge_round_robin("collide", &[&a, &b]).unwrap();
        let stats = TraceStats::compute(&m);
        assert_eq!(stats.peak_live_bytes, 10 * 64 + 10 * 128);
    }

    #[test]
    fn merge_of_real_workloads_is_well_formed() {
        let net = EasyportConfig {
            packets: 200,
            ..EasyportConfig::paper()
        }
        .generate(1);
        let video = VtcConfig::small().generate(2);
        let m = merge_round_robin("net+video", &[&net, &video]).unwrap();
        assert_eq!(m.len(), net.len() + video.len());
        // Hot sizes of both workloads coexist.
        let stats = TraceStats::compute(&m);
        assert!(stats.size_stat(74).is_some(), "network headers present");
        assert!(stats.size_stat(32).is_some(), "zerotree nodes present");
    }

    #[test]
    fn scale_multiplies_sizes() {
        let t = ramp(4, 100);
        let doubled = scale_sizes(&t, 2.0);
        let stats = TraceStats::compute(&doubled);
        assert_eq!(stats.max_size, 200);
        let halved = scale_sizes(&t, 0.5);
        let stats = TraceStats::compute(&halved);
        assert_eq!(stats.max_size, 50);
    }

    #[test]
    fn scale_never_produces_zero_sizes() {
        let t = ramp(3, 1);
        let tiny = scale_sizes(&t, 0.01);
        let stats = TraceStats::compute(&tiny);
        assert_eq!(stats.min_size, 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn scale_rejects_nonpositive() {
        let _ = scale_sizes(&ramp(1, 8), 0.0);
    }

    #[test]
    fn truncate_frees_survivors() {
        let t = ramp(10, 64); // 10 allocs then 10 frees
        let head = truncate(&t, 10); // all allocs, no frees yet
        assert_eq!(head.final_live_bytes(), 0, "survivors were freed");
        let stats = TraceStats::compute(&head);
        assert_eq!(stats.allocs, 10);
        assert_eq!(stats.frees, 10);
    }

    #[test]
    fn truncate_beyond_len_is_identity_plus_nothing() {
        let t = ramp(3, 8);
        let whole = truncate(&t, 1000);
        assert_eq!(whole.len(), t.len());
    }
}
