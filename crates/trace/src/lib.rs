//! # dmx-trace — dynamic-memory allocation traces and workload generators
//!
//! The exploration tool of the DATE 2006 paper replays the *allocation
//! behaviour* of an application (Infineon Easyport, MPEG-4 VTC) against
//! thousands of candidate allocator configurations. This crate provides that
//! workload substrate:
//!
//! * [`TraceEvent`] / [`Trace`] — a validated sequence of
//!   allocate / free / access / compute-tick events;
//! * [`CompiledTrace`] — the replay-optimized lowering (dense recycled
//!   block slots, baked-in sizes, precomputed lifetimes) the simulation
//!   kernel consumes; built once per workload and `Arc`-shared;
//! * [`TraceStats`] — profiled statistics (dominant block sizes, peak live
//!   footprint, lifetimes) that seed the exploration's parameter space;
//! * [`textfmt`] / [`binfmt`] — line-oriented and compact binary
//!   serialization, both round-trip safe;
//! * [`gen`] — deterministic workload generators: an Easyport-like wireless
//!   packet workload, an MPEG-4 VTC-like still-texture-decoding workload,
//!   and configurable synthetic mixtures. Real traces from the paper are
//!   proprietary; the generators reproduce the distributional properties
//!   the paper reports (see `DESIGN.md` §2).
//!
//!
//! **Paper mapping:** the §2 workloads — the Easyport generator behind
//! Figure 1 / Table 2 and the MPEG-4 VTC generator behind Table 3 — plus
//! the synthetic mixtures the ablation (`tab6_ablation`) sweeps.
//!
//! # Example
//!
//! ```
//! use dmx_trace::gen::{EasyportConfig, TraceGenerator};
//! use dmx_trace::TraceStats;
//!
//! let trace = EasyportConfig::small().generate(42);
//! let stats = TraceStats::compute(&trace);
//! // The wireless workload is dominated by a few hot block sizes
//! // (the paper names 74-byte and 1500-byte blocks).
//! let hot = stats.dominant_sizes(4);
//! assert!(hot.contains(&74));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
mod compiled;
mod error;
mod event;
pub mod gen;
pub mod ops;
mod stats;
pub mod textfmt;
mod trace;

pub use compiled::{CompiledEvent, CompiledTrace};
pub use error::{CompileError, ParseError, TraceError};
pub use event::{BlockId, ThreadId, TraceEvent};
pub use stats::{SizeStat, TraceStats};
pub use trace::Trace;
