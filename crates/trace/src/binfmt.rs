//! Compact binary serialization of traces.
//!
//! Layout (version 1, single-threaded traces):
//!
//! ```text
//! magic   b"DMXT\x01"
//! name    varint length + UTF-8 bytes
//! records tag u8 followed by LEB128-varint fields:
//!         0x01 Alloc  { id, size }
//!         0x02 Free   { id }
//!         0x03 Access { id, reads, writes }
//!         0x04 Tick   { cycles }
//! ```
//!
//! Version 2 (magic `b"DMXT\x02"`) carries thread identity: the
//! `Alloc`/`Free`/`Access` records gain one trailing `tid` varint each
//! (`Tick` is unchanged):
//!
//! ```text
//! magic   b"DMXT\x02"
//! name    varint length + UTF-8 bytes
//! records 0x01 Alloc  { id, size, tid }
//!         0x02 Free   { id, tid }
//!         0x03 Access { id, reads, writes, tid }
//!         0x04 Tick   { cycles }
//! ```
//!
//! The writer emits version 1 — byte-identical to pre-thread-support
//! writers — whenever every event runs on tid 0, and version 2 otherwise.
//! Version-1 inputs decode with every tid defaulting to 0.
//!
//! All integers are unsigned LEB128 varints, so short ids and small counts
//! cost one or two bytes — the binary form is typically 2–4× smaller than
//! the text form and decodes without per-line scanning, which matters when
//! sweeping thousands of configurations over multi-million-event traces.
//!
//! Decoding is hardened against hostile inputs: length prefixes are
//! bounds-checked against the *remaining* input before any slice is taken
//! (overflow-free), so a truncated or adversarial header claiming a huge
//! length fails fast with [`ParseError::Truncated`] and never causes an
//! out-of-range read or an unbounded allocation.

use crate::error::ParseError;
use crate::event::{BlockId, ThreadId, TraceEvent};
use crate::trace::Trace;

const MAGIC_V1: &[u8; 5] = b"DMXT\x01";
const MAGIC_V2: &[u8; 5] = b"DMXT\x02";

const TAG_ALLOC: u8 = 0x01;
const TAG_FREE: u8 = 0x02;
const TAG_ACCESS: u8 = 0x03;
const TAG_TICK: u8 = 0x04;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `trace` to a byte vector.
///
/// Single-threaded traces (all tids 0) encode to the version-1 layout,
/// byte-identical to writers predating thread support; traces with any
/// non-zero tid use version 2 carrying a tid per allocator/access record.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let threaded = trace
        .iter()
        .any(|ev| ev.thread_id().is_some_and(|tid| tid.0 != 0));
    let mut out = Vec::with_capacity(16 + trace.len() * 6);
    out.extend_from_slice(if threaded { MAGIC_V2 } else { MAGIC_V1 });
    let name = trace.name().as_bytes();
    push_varint(&mut out, name.len() as u64);
    out.extend_from_slice(name);
    for ev in trace {
        match *ev {
            TraceEvent::Alloc { id, size, tid } => {
                out.push(TAG_ALLOC);
                push_varint(&mut out, id.0);
                push_varint(&mut out, u64::from(size));
                if threaded {
                    push_varint(&mut out, u64::from(tid.0));
                }
            }
            TraceEvent::Free { id, tid } => {
                out.push(TAG_FREE);
                push_varint(&mut out, id.0);
                if threaded {
                    push_varint(&mut out, u64::from(tid.0));
                }
            }
            TraceEvent::Access {
                id,
                reads,
                writes,
                tid,
            } => {
                out.push(TAG_ACCESS);
                push_varint(&mut out, id.0);
                push_varint(&mut out, u64::from(reads));
                push_varint(&mut out, u64::from(writes));
                if threaded {
                    push_varint(&mut out, u64::from(tid.0));
                }
            }
            TraceEvent::Tick { cycles } => {
                out.push(TAG_TICK);
                push_varint(&mut out, u64::from(cycles));
            }
        }
    }
    out
}

/// Decodes a trace from bytes produced by [`to_bytes`] (version 1 or 2).
///
/// # Errors
///
/// [`ParseError::BadHeader`] on a wrong magic, [`ParseError::Truncated`] if
/// the input ends inside a record or a length prefix exceeds the remaining
/// input, [`ParseError::Malformed`] on an unknown record tag or an
/// over-long varint (with the byte offset), and [`ParseError::Invalid`] if
/// the decoded events violate trace well-formedness.
pub fn from_bytes(input: &[u8]) -> Result<Trace, ParseError> {
    let mut r = Reader { input, pos: 0 };
    let magic = r.take(MAGIC_V1.len())?;
    let v2 = match magic {
        m if m == MAGIC_V1 => false,
        m if m == MAGIC_V2 => true,
        _ => return Err(ParseError::BadHeader),
    };
    let name_len = r.varint()? as usize;
    let name_bytes = r.take(name_len)?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| ParseError::BadHeader)?
        .to_owned();

    let mut trace = Trace::new(name);
    while !r.done() {
        let at = r.pos;
        let tag = r.u8()?;
        let event = match tag {
            TAG_ALLOC => TraceEvent::Alloc {
                id: BlockId(r.varint()?),
                size: r.varint_u32()?,
                tid: r.tid(v2)?,
            },
            TAG_FREE => TraceEvent::Free {
                id: BlockId(r.varint()?),
                tid: r.tid(v2)?,
            },
            TAG_ACCESS => TraceEvent::Access {
                id: BlockId(r.varint()?),
                reads: r.varint_u32()?,
                writes: r.varint_u32()?,
                tid: r.tid(v2)?,
            },
            TAG_TICK => TraceEvent::Tick {
                cycles: r.varint_u32()?,
            },
            other => {
                return Err(ParseError::Malformed {
                    at,
                    what: format!("unknown record tag 0x{other:02x}"),
                })
            }
        };
        trace.push(event)?;
    }
    Ok(trace)
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        // Compare against the remaining bytes rather than computing
        // `pos + n`: a hostile length prefix near `usize::MAX` would wrap
        // the addition and slip past the check into an out-of-range slice.
        if n > self.input.len() - self.pos {
            return Err(ParseError::Truncated);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(ParseError::Malformed {
                    at: start,
                    what: "varint overflows u64".to_owned(),
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(ParseError::Malformed {
                    at: start,
                    what: "varint too long".to_owned(),
                });
            }
        }
    }

    fn varint_u32(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| ParseError::Malformed {
            at: start,
            what: "field overflows u32".to_owned(),
        })
    }

    /// The trailing tid varint of version-2 records; version-1 records
    /// have none and default to tid 0.
    fn tid(&mut self, v2: bool) -> Result<ThreadId, ParseError> {
        if v2 {
            Ok(ThreadId(self.varint_u32()?))
        } else {
            Ok(ThreadId::MAIN)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_events(
            "bin-sample",
            vec![
                TraceEvent::alloc(BlockId(10), 1500),
                TraceEvent::access(BlockId(10), 400, 375),
                TraceEvent::tick(999),
                TraceEvent::free(BlockId(10)),
            ],
        )
        .unwrap()
    }

    fn threaded_sample() -> Trace {
        Trace::from_events(
            "bin-threaded",
            vec![
                TraceEvent::alloc_on(ThreadId(1), BlockId(10), 1500),
                TraceEvent::access_on(ThreadId(1), BlockId(10), 400, 375),
                TraceEvent::tick(999),
                TraceEvent::free_on(ThreadId(2), BlockId(10)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn single_threaded_traces_encode_as_v1() {
        let bytes = to_bytes(&sample());
        assert_eq!(&bytes[..5], MAGIC_V1);
    }

    #[test]
    fn threaded_roundtrip_uses_v2() {
        let t = threaded_sample();
        let bytes = to_bytes(&t);
        assert_eq!(&bytes[..5], MAGIC_V2);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn v1_reads_default_to_tid_zero() {
        // A v1 stream decodes with every tid 0 even when the same events,
        // written threaded, would use v2.
        let bytes = to_bytes(&sample());
        let back = from_bytes(&bytes).unwrap();
        assert!(back
            .iter()
            .all(|ev| ev.thread_id().is_none_or(|tid| tid == ThreadId::MAIN)));
    }

    #[test]
    fn roundtrip_extreme_values() {
        let t = Trace::from_events(
            "extremes",
            vec![
                TraceEvent::alloc_on(ThreadId(u32::MAX), BlockId(u64::MAX), u32::MAX),
                TraceEvent::access_on(ThreadId(u32::MAX), BlockId(u64::MAX), u32::MAX, 0),
                TraceEvent::tick(u32::MAX),
                TraceEvent::free(BlockId(u64::MAX)),
                TraceEvent::alloc(BlockId(0), 1),
                TraceEvent::free(BlockId(0)),
            ],
        )
        .unwrap();
        let back = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn magic_checked() {
        assert_eq!(from_bytes(b"BOGUS"), Err(ParseError::BadHeader));
        assert_eq!(from_bytes(b"DMXT\x03\x01t"), Err(ParseError::BadHeader));
        assert_eq!(from_bytes(b""), Err(ParseError::Truncated));
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let bytes = to_bytes(&t);
        // chop the last byte of the final record
        let err = from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err, ParseError::Truncated);
    }

    #[test]
    fn hostile_name_length_fails_fast() {
        // Adversarial header: valid magic, then a name length claiming
        // u64::MAX bytes. Decoding must fail with `Truncated` — no panic
        // from an overflowed bounds check, no huge allocation attempt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        push_varint(&mut bytes, u64::MAX);
        assert_eq!(from_bytes(&bytes), Err(ParseError::Truncated));

        // Same with a "merely huge" length far beyond the input.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        push_varint(&mut bytes, 1 << 40);
        bytes.extend_from_slice(b"tiny");
        assert_eq!(from_bytes(&bytes), Err(ParseError::Truncated));
    }

    #[test]
    fn unknown_tag_reports_offset() {
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        let at = bytes.len();
        bytes.push(0x7f);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { at: a, .. } if a == at));
    }

    #[test]
    fn overlong_varint_rejected() {
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        bytes.push(TAG_FREE);
        bytes.extend_from_slice(&[0xff; 10]);
        bytes.push(0x01);
        assert!(matches!(
            from_bytes(&bytes),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn u32_field_overflow_rejected() {
        // Tick with a 2^35 cycle count: valid varint, invalid u32 field.
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        bytes.push(TAG_TICK);
        push_varint(&mut bytes, 1u64 << 35);
        assert!(matches!(
            from_bytes(&bytes),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn v2_tid_overflow_rejected() {
        // Free record whose tid varint exceeds u32 in a v2 stream.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        push_varint(&mut bytes, 1);
        bytes.push(b't');
        bytes.push(TAG_ALLOC);
        push_varint(&mut bytes, 1); // id
        push_varint(&mut bytes, 8); // size
        push_varint(&mut bytes, 1u64 << 40); // tid overflows u32
        assert!(matches!(
            from_bytes(&bytes),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let mut events = Vec::new();
        for i in 0..1000u64 {
            events.push(TraceEvent::alloc(BlockId(i), 74));
            events.push(TraceEvent::free(BlockId(i)));
        }
        let t = Trace::from_events("big", events).unwrap();
        let bin = to_bytes(&t);
        let txt = crate::textfmt::to_string(&t);
        assert!(
            bin.len() * 2 < txt.len(),
            "binary {} vs text {}",
            bin.len(),
            txt.len()
        );
    }

    #[test]
    fn semantic_violation_surfaces() {
        // Hand-craft: free of never-allocated block #7.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.push(1); // name length
        bytes.push(b't');
        bytes.push(TAG_FREE);
        bytes.push(7);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }
}
