//! Compact binary serialization of traces.
//!
//! Layout:
//!
//! ```text
//! magic   b"DMXT\x01"
//! name    varint length + UTF-8 bytes
//! records tag u8 followed by LEB128-varint fields:
//!         0x01 Alloc  { id, size }
//!         0x02 Free   { id }
//!         0x03 Access { id, reads, writes }
//!         0x04 Tick   { cycles }
//! ```
//!
//! All integers are unsigned LEB128 varints, so short ids and small counts
//! cost one or two bytes — the binary form is typically 2–4× smaller than
//! the text form and decodes without per-line scanning, which matters when
//! sweeping thousands of configurations over multi-million-event traces.

use crate::error::ParseError;
use crate::event::{BlockId, TraceEvent};
use crate::trace::Trace;

const MAGIC: &[u8; 5] = b"DMXT\x01";

const TAG_ALLOC: u8 = 0x01;
const TAG_FREE: u8 = 0x02;
const TAG_ACCESS: u8 = 0x03;
const TAG_TICK: u8 = 0x04;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes `trace` to a byte vector.
pub fn to_bytes(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + trace.len() * 6);
    out.extend_from_slice(MAGIC);
    let name = trace.name().as_bytes();
    push_varint(&mut out, name.len() as u64);
    out.extend_from_slice(name);
    for ev in trace {
        match *ev {
            TraceEvent::Alloc { id, size } => {
                out.push(TAG_ALLOC);
                push_varint(&mut out, id.0);
                push_varint(&mut out, u64::from(size));
            }
            TraceEvent::Free { id } => {
                out.push(TAG_FREE);
                push_varint(&mut out, id.0);
            }
            TraceEvent::Access { id, reads, writes } => {
                out.push(TAG_ACCESS);
                push_varint(&mut out, id.0);
                push_varint(&mut out, u64::from(reads));
                push_varint(&mut out, u64::from(writes));
            }
            TraceEvent::Tick { cycles } => {
                out.push(TAG_TICK);
                push_varint(&mut out, u64::from(cycles));
            }
        }
    }
    out
}

/// Decodes a trace from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// [`ParseError::BadHeader`] on a wrong magic, [`ParseError::Truncated`] if
/// the input ends inside a record, [`ParseError::Malformed`] on an unknown
/// record tag or an over-long varint (with the byte offset), and
/// [`ParseError::Invalid`] if the decoded events violate trace
/// well-formedness.
pub fn from_bytes(input: &[u8]) -> Result<Trace, ParseError> {
    let mut r = Reader { input, pos: 0 };
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(ParseError::BadHeader);
    }
    let name_len = r.varint()? as usize;
    let name_bytes = r.take(name_len)?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| ParseError::BadHeader)?
        .to_owned();

    let mut trace = Trace::new(name);
    while !r.done() {
        let at = r.pos;
        let tag = r.u8()?;
        let event = match tag {
            TAG_ALLOC => TraceEvent::Alloc {
                id: BlockId(r.varint()?),
                size: r.varint_u32()?,
            },
            TAG_FREE => TraceEvent::Free {
                id: BlockId(r.varint()?),
            },
            TAG_ACCESS => TraceEvent::Access {
                id: BlockId(r.varint()?),
                reads: r.varint_u32()?,
                writes: r.varint_u32()?,
            },
            TAG_TICK => TraceEvent::Tick {
                cycles: r.varint_u32()?,
            },
            other => {
                return Err(ParseError::Malformed {
                    at,
                    what: format!("unknown record tag 0x{other:02x}"),
                })
            }
        };
        trace.push(event)?;
    }
    Ok(trace)
}

struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn done(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.pos + n > self.input.len() {
            return Err(ParseError::Truncated);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, ParseError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 63 && byte > 1 {
                return Err(ParseError::Malformed {
                    at: start,
                    what: "varint overflows u64".to_owned(),
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(ParseError::Malformed {
                    at: start,
                    what: "varint too long".to_owned(),
                });
            }
        }
    }

    fn varint_u32(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| ParseError::Malformed {
            at: start,
            what: "field overflows u32".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_events(
            "bin-sample",
            vec![
                TraceEvent::Alloc {
                    id: BlockId(10),
                    size: 1500,
                },
                TraceEvent::Access {
                    id: BlockId(10),
                    reads: 400,
                    writes: 375,
                },
                TraceEvent::Tick { cycles: 999 },
                TraceEvent::Free { id: BlockId(10) },
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn roundtrip_extreme_values() {
        let t = Trace::from_events(
            "extremes",
            vec![
                TraceEvent::Alloc {
                    id: BlockId(u64::MAX),
                    size: u32::MAX,
                },
                TraceEvent::Access {
                    id: BlockId(u64::MAX),
                    reads: u32::MAX,
                    writes: 0,
                },
                TraceEvent::Tick { cycles: u32::MAX },
                TraceEvent::Free {
                    id: BlockId(u64::MAX),
                },
                TraceEvent::Alloc {
                    id: BlockId(0),
                    size: 1,
                },
                TraceEvent::Free { id: BlockId(0) },
            ],
        )
        .unwrap();
        let back = from_bytes(&to_bytes(&t)).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn magic_checked() {
        assert_eq!(from_bytes(b"BOGUS"), Err(ParseError::BadHeader));
        assert_eq!(from_bytes(b""), Err(ParseError::Truncated));
    }

    #[test]
    fn truncation_detected() {
        let t = sample();
        let bytes = to_bytes(&t);
        // chop the last byte of the final record
        let err = from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err, ParseError::Truncated);
    }

    #[test]
    fn unknown_tag_reports_offset() {
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        let at = bytes.len();
        bytes.push(0x7f);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { at: a, .. } if a == at));
    }

    #[test]
    fn overlong_varint_rejected() {
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        bytes.push(TAG_FREE);
        bytes.extend_from_slice(&[0xff; 10]);
        bytes.push(0x01);
        assert!(matches!(
            from_bytes(&bytes),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn u32_field_overflow_rejected() {
        // Tick with a 2^35 cycle count: valid varint, invalid u32 field.
        let t = Trace::new("x");
        let mut bytes = to_bytes(&t);
        bytes.push(TAG_TICK);
        let mut v = 1u64 << 35;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                bytes.push(byte);
                break;
            }
            bytes.push(byte | 0x80);
        }
        assert!(matches!(
            from_bytes(&bytes),
            Err(ParseError::Malformed { .. })
        ));
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let mut events = Vec::new();
        for i in 0..1000u64 {
            events.push(TraceEvent::Alloc {
                id: BlockId(i),
                size: 74,
            });
            events.push(TraceEvent::Free { id: BlockId(i) });
        }
        let t = Trace::from_events("big", events).unwrap();
        let bin = to_bytes(&t);
        let txt = crate::textfmt::to_string(&t);
        assert!(
            bin.len() * 2 < txt.len(),
            "binary {} vs text {}",
            bin.len(),
            txt.len()
        );
    }

    #[test]
    fn semantic_violation_surfaces() {
        // Hand-craft: free of never-allocated block #7.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(1); // name length
        bytes.push(b't');
        bytes.push(TAG_FREE);
        bytes.push(7);
        let err = from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, ParseError::Invalid(_)));
    }
}
