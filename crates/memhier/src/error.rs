//! Error types for hierarchy construction and region placement.

use std::error::Error;
use std::fmt;

use crate::hierarchy::LevelId;

/// Errors building a [`MemoryHierarchy`](crate::MemoryHierarchy).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HierarchyError {
    /// The level list was empty.
    Empty,
    /// Two levels share the same name.
    DuplicateName(String),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::Empty => f.write_str("memory hierarchy has no levels"),
            HierarchyError::DuplicateName(name) => {
                write!(f, "duplicate memory level name `{name}`")
            }
        }
    }
}

impl Error for HierarchyError {}

/// Errors reserving a [`Region`](crate::Region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RegionError {
    /// A zero-byte reservation was requested.
    ZeroSize,
    /// The requested level does not exist in the hierarchy.
    UnknownLevel(LevelId),
    /// The level (and, under spilling, every slower level) lacks capacity.
    OutOfLevel {
        /// Level the reservation was requested on.
        level: LevelId,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available on the requested level.
        available: u64,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::ZeroSize => f.write_str("zero-size region requested"),
            RegionError::UnknownLevel(level) => {
                write!(f, "unknown memory level {level}")
            }
            RegionError::OutOfLevel {
                level,
                requested,
                available,
            } => write!(
                f,
                "level {level} cannot hold {requested} bytes ({available} available)"
            ),
        }
    }
}

impl Error for RegionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = HierarchyError::DuplicateName("sp".into());
        assert!(e.to_string().contains("sp"));
        let e = RegionError::OutOfLevel {
            level: LevelId(1),
            requested: 100,
            available: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("10"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(HierarchyError::Empty);
        takes_err(RegionError::ZeroSize);
    }
}
