//! Ready-made platform descriptions.
//!
//! Energy and latency figures are CACTI-style ballpark values for a
//! 0.13–0.18 µm embedded platform (the technology generation of the DATE
//! 2006 evaluation). Absolute numbers are not calibrated to any silicon;
//! what the exploration results depend on is the *ratio* between levels —
//! an on-chip scratchpad access is roughly an order of magnitude cheaper
//! than a main-memory access in both energy and latency.

use crate::hierarchy::MemoryHierarchy;
use crate::level::{LevelKind, MemoryLevel};

/// The paper's example platform: a 64 KB L1 scratchpad plus a 4 MB main
/// memory ("a dedicated pool for 74-byte blocks must be placed onto the
/// L1 64 KB scratchpad memory, while a general pool and a dedicated pool
/// for 1500-byte blocks must use the 4 MB main memory").
pub fn sp64k_dram4m() -> MemoryHierarchy {
    MemoryHierarchy::new(vec![
        MemoryLevel::builder("L1-scratchpad", LevelKind::Scratchpad)
            .capacity(64 * 1024)
            .read_energy_pj(52)
            .write_energy_pj(58)
            .read_latency(1)
            .write_latency(1)
            .leakage_pj_per_kcycle(2)
            .build(),
        MemoryLevel::builder("main-dram", LevelKind::Dram)
            .capacity(4 * 1024 * 1024)
            .read_energy_pj(1480)
            .write_energy_pj(1620)
            .read_latency(18)
            .write_latency(20)
            .leakage_pj_per_kcycle(24)
            .build(),
    ])
    .expect("preset hierarchy is valid")
}

/// A three-level platform: 32 KB scratchpad, 256 KB on-chip SRAM, 8 MB DRAM.
pub fn sp32k_sram256k_dram8m() -> MemoryHierarchy {
    MemoryHierarchy::new(vec![
        MemoryLevel::builder("L1-scratchpad", LevelKind::Scratchpad)
            .capacity(32 * 1024)
            .read_energy_pj(38)
            .write_energy_pj(43)
            .read_latency(1)
            .write_latency(1)
            .build(),
        MemoryLevel::builder("L2-sram", LevelKind::Sram)
            .capacity(256 * 1024)
            .read_energy_pj(180)
            .write_energy_pj(205)
            .read_latency(4)
            .write_latency(4)
            .build(),
        MemoryLevel::builder("main-dram", LevelKind::Dram)
            .capacity(8 * 1024 * 1024)
            .read_energy_pj(1480)
            .write_energy_pj(1620)
            .read_latency(18)
            .write_latency(20)
            .build(),
    ])
    .expect("preset hierarchy is valid")
}

/// A scratchpad-rich platform: a generous 256 KB L1 scratchpad over a
/// 4 MB main memory. On this platform far more of the hot pools fit
/// on-chip, so placement-heavy configurations pay off — the counterweight
/// to [`dram_only_4m`] in cross-platform robustness studies.
pub fn sp256k_dram4m() -> MemoryHierarchy {
    MemoryHierarchy::new(vec![
        MemoryLevel::builder("L1-scratchpad", LevelKind::Scratchpad)
            .capacity(256 * 1024)
            .read_energy_pj(118)
            .write_energy_pj(131)
            .read_latency(2)
            .write_latency(2)
            .leakage_pj_per_kcycle(7)
            .build(),
        MemoryLevel::builder("main-dram", LevelKind::Dram)
            .capacity(4 * 1024 * 1024)
            .read_energy_pj(1480)
            .write_energy_pj(1620)
            .read_latency(18)
            .write_latency(20)
            .leakage_pj_per_kcycle(24)
            .build(),
    ])
    .expect("preset hierarchy is valid")
}

/// A single-level platform (main memory only). Useful as the degenerate
/// baseline: with one level, placement stops mattering and only the
/// allocator-algorithm parameters differentiate configurations.
pub fn dram_only_4m() -> MemoryHierarchy {
    MemoryHierarchy::new(vec![MemoryLevel::builder("main-dram", LevelKind::Dram)
        .capacity(4 * 1024 * 1024)
        .read_energy_pj(1480)
        .write_energy_pj(1620)
        .read_latency(18)
        .write_latency(20)
        .build()])
    .expect("preset hierarchy is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform_shape() {
        let h = sp64k_dram4m();
        assert_eq!(h.len(), 2);
        let sp = h.level(h.fastest());
        let dram = h.level(h.slowest());
        assert_eq!(sp.capacity(), 64 * 1024);
        assert_eq!(dram.capacity(), 4 * 1024 * 1024);
        // The energy/latency ratios drive placement: DRAM must be much
        // more expensive than the scratchpad.
        assert!(dram.read_energy_pj() > 10 * sp.read_energy_pj());
        assert!(dram.read_latency() >= 10 * sp.read_latency());
    }

    #[test]
    fn three_level_is_monotone_in_cost() {
        let h = sp32k_sram256k_dram8m();
        assert_eq!(h.len(), 3);
        let costs: Vec<u64> = h.iter().map(|(_, l)| l.read_energy_pj()).collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]));
        let caps: Vec<u64> = h.iter().map(|(_, l)| l.capacity()).collect();
        assert!(caps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn scratchpad_rich_keeps_the_cost_ratio() {
        let h = sp256k_dram4m();
        assert_eq!(h.len(), 2);
        let sp = h.level(h.fastest());
        let dram = h.level(h.slowest());
        assert_eq!(sp.capacity(), 256 * 1024);
        // Bigger scratchpads cost more per access than the 64 KB one, but
        // DRAM must stay an order of magnitude more expensive.
        let small = sp64k_dram4m();
        assert!(sp.read_energy_pj() > small.level(small.fastest()).read_energy_pj());
        assert!(dram.read_energy_pj() > 10 * sp.read_energy_pj());
    }

    #[test]
    fn dram_only_has_one_level() {
        let h = dram_only_4m();
        assert_eq!(h.len(), 1);
        assert_eq!(h.fastest(), h.slowest());
    }
}
