//! # dmx-memhier — embedded memory-hierarchy model
//!
//! This crate models the *platform side* of the exploration tool from
//! "Automated Exploration of Pareto-optimal Configurations in Parameterized
//! Dynamic Memory Allocation for Embedded Systems" (DATE 2006): a small set
//! of on-chip/off-chip memory levels (e.g. a 64 KB L1 scratchpad and a 4 MB
//! main memory) onto which dynamic-memory allocator *pools* are mapped.
//!
//! It provides:
//!
//! * [`MemoryLevel`] / [`MemoryHierarchy`] — the platform description:
//!   capacity, per-access read/write energy, and access latency per level;
//! * [`CounterSet`] — per-level read/write access counters that the
//!   allocator simulator charges while replaying a trace;
//! * [`CostModel`] — turns access counters into the paper's derived metrics
//!   (energy in picojoules, access time in cycles);
//! * [`RegionTable`] — carves each level's address space into disjoint
//!   regions so every pool owns a placed, bounded address range.
//!
//!
//! **Paper mapping:** the §2 platform model (64 KB scratchpad + 4 MB
//! DRAM preset) whose per-level access counts become the energy and
//! execution-time columns of Tables 2–3.
//!
//! # Example
//!
//! ```
//! use dmx_memhier::{presets, CounterSet, CostModel, RegionTable};
//!
//! let hier = presets::sp64k_dram4m();
//! let sp = hier.id_by_name("L1-scratchpad").unwrap();
//!
//! // Reserve a 4 KB pool region on the scratchpad.
//! let mut regions = RegionTable::new(&hier);
//! let region = regions.reserve(sp, 4096)?;
//! assert_eq!(region.size, 4096);
//!
//! // Charge a few accesses and derive energy/time.
//! let mut counters = CounterSet::new(hier.len());
//! counters.record_reads(sp, 10);
//! counters.record_writes(sp, 5);
//! let cost = CostModel::new(&hier);
//! assert!(cost.energy_pj(&counters) > 0);
//! assert!(cost.access_cycles(&counters) > 0);
//! # Ok::<(), dmx_memhier::RegionError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod counters;
mod error;
mod hierarchy;
mod level;
pub mod presets;
mod region;

pub use cost::{CostModel, CostParams};
pub use counters::{AccessCounts, CounterSet};
pub use error::{HierarchyError, RegionError};
pub use hierarchy::{LevelChoice, LevelId, MemoryHierarchy};
pub use level::{LevelKind, MemoryLevel, MemoryLevelBuilder};
pub use region::{PlacementPolicy, Region, RegionTable};
