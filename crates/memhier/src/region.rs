//! Per-level address-space carving for pool placement.
//!
//! Every allocator pool owns a *region*: a placed, bounded address range on
//! one memory level. Regions never overlap; each level hands ranges out in
//! address order (pools only ever grow, mirroring the static pool carving an
//! embedded linker script would perform). Addresses from different levels
//! live in disjoint windows so a simulated address uniquely identifies its
//! level.

use crate::error::RegionError;
use crate::hierarchy::{LevelId, MemoryHierarchy};

/// Width of each level's address window. 2^40 bytes per level is far above
/// any embedded memory size, so windows never collide.
const LEVEL_WINDOW_SHIFT: u32 = 40;

/// A placed address range on a memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// The level this region lives on.
    pub level: LevelId,
    /// First simulated address of the region.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// `true` if `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// What to do when a reservation does not fit on the requested level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Fail the reservation with [`RegionError::OutOfLevel`].
    #[default]
    Strict,
    /// Try each slower level in turn; fail only when none fits.
    SpillToSlower,
}

/// Tracks how much of each level's capacity has been handed out and carves
/// new regions.
#[derive(Debug, Clone)]
pub struct RegionTable {
    capacity: Vec<u64>,
    used: Vec<u64>,
}

impl RegionTable {
    /// A fresh table over `hierarchy` with nothing reserved.
    pub fn new(hierarchy: &MemoryHierarchy) -> Self {
        RegionTable {
            capacity: hierarchy.iter().map(|(_, l)| l.capacity()).collect(),
            used: vec![0; hierarchy.len()],
        }
    }

    /// Bytes already reserved on `level`.
    pub fn used(&self, level: LevelId) -> u64 {
        self.used[level.index()]
    }

    /// Bytes still available on `level`.
    pub fn available(&self, level: LevelId) -> u64 {
        self.capacity[level.index()] - self.used[level.index()]
    }

    /// Total bytes reserved over all levels.
    pub fn total_used(&self) -> u64 {
        self.used.iter().sum()
    }

    /// Reserves `size` bytes on `level` (strict placement).
    ///
    /// # Errors
    ///
    /// [`RegionError::ZeroSize`] for a zero-byte request;
    /// [`RegionError::UnknownLevel`] if `level` is out of range;
    /// [`RegionError::OutOfLevel`] if the level lacks capacity.
    pub fn reserve(&mut self, level: LevelId, size: u64) -> Result<Region, RegionError> {
        self.reserve_with(level, size, PlacementPolicy::Strict)
    }

    /// Reserves `size` bytes on `level`, applying `policy` on overflow.
    ///
    /// # Errors
    ///
    /// As [`RegionTable::reserve`]; with
    /// [`PlacementPolicy::SpillToSlower`], `OutOfLevel` is returned only
    /// when no level at or below `level` can hold the request.
    pub fn reserve_with(
        &mut self,
        level: LevelId,
        size: u64,
        policy: PlacementPolicy,
    ) -> Result<Region, RegionError> {
        if size == 0 {
            return Err(RegionError::ZeroSize);
        }
        if level.index() >= self.capacity.len() {
            return Err(RegionError::UnknownLevel(level));
        }
        let candidates: Vec<usize> = match policy {
            PlacementPolicy::Strict => vec![level.index()],
            PlacementPolicy::SpillToSlower => (level.index()..self.capacity.len()).collect(),
        };
        for idx in candidates {
            if self.capacity[idx] - self.used[idx] >= size {
                let base = ((idx as u64) << LEVEL_WINDOW_SHIFT) + self.used[idx];
                self.used[idx] += size;
                return Ok(Region {
                    level: LevelId(idx as u16),
                    base,
                    size,
                });
            }
        }
        Err(RegionError::OutOfLevel {
            level,
            requested: size,
            available: self.available(level),
        })
    }

    /// The level owning a simulated address (inverse of the address window
    /// encoding). Returns `None` for addresses outside every window.
    pub fn level_of_addr(&self, addr: u64) -> Option<LevelId> {
        let idx = (addr >> LEVEL_WINDOW_SHIFT) as usize;
        (idx < self.capacity.len()).then_some(LevelId(idx as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::{LevelKind, MemoryLevel};

    fn hier() -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            MemoryLevel::builder("sp", LevelKind::Scratchpad)
                .capacity(1024)
                .build(),
            MemoryLevel::builder("main", LevelKind::Dram)
                .capacity(1 << 20)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn reserve_carves_in_address_order() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        let a = t.reserve(LevelId(0), 100).unwrap();
        let b = t.reserve(LevelId(0), 200).unwrap();
        assert_eq!(a.end(), b.base);
        assert_eq!(t.used(LevelId(0)), 300);
        assert_eq!(t.available(LevelId(0)), 724);
    }

    #[test]
    fn windows_are_disjoint_across_levels() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        let a = t.reserve(LevelId(0), 100).unwrap();
        let b = t.reserve(LevelId(1), 100).unwrap();
        assert!(a.end() <= b.base || b.end() <= a.base);
        assert_eq!(t.level_of_addr(a.base), Some(LevelId(0)));
        assert_eq!(t.level_of_addr(b.base), Some(LevelId(1)));
    }

    #[test]
    fn strict_overflow_fails() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        let err = t.reserve(LevelId(0), 2048).unwrap_err();
        match err {
            RegionError::OutOfLevel {
                level,
                requested,
                available,
            } => {
                assert_eq!(level, LevelId(0));
                assert_eq!(requested, 2048);
                assert_eq!(available, 1024);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn spill_places_on_slower_level() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        let r = t
            .reserve_with(LevelId(0), 2048, PlacementPolicy::SpillToSlower)
            .unwrap();
        assert_eq!(r.level, LevelId(1));
    }

    #[test]
    fn spill_fails_when_nothing_fits() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        let err = t
            .reserve_with(LevelId(0), 2 << 20, PlacementPolicy::SpillToSlower)
            .unwrap_err();
        assert!(matches!(err, RegionError::OutOfLevel { .. }));
    }

    #[test]
    fn zero_size_rejected() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        assert_eq!(t.reserve(LevelId(0), 0), Err(RegionError::ZeroSize));
    }

    #[test]
    fn unknown_level_rejected() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        assert_eq!(
            t.reserve(LevelId(9), 8),
            Err(RegionError::UnknownLevel(LevelId(9)))
        );
    }

    #[test]
    fn region_contains() {
        let r = Region {
            level: LevelId(0),
            base: 100,
            size: 10,
        };
        assert!(r.contains(100));
        assert!(r.contains(109));
        assert!(!r.contains(110));
        assert!(!r.contains(99));
    }

    #[test]
    fn total_used_sums_levels() {
        let h = hier();
        let mut t = RegionTable::new(&h);
        t.reserve(LevelId(0), 10).unwrap();
        t.reserve(LevelId(1), 20).unwrap();
        assert_eq!(t.total_used(), 30);
    }

    #[test]
    fn level_of_addr_rejects_foreign_windows() {
        let h = hier();
        let t = RegionTable::new(&h);
        assert_eq!(t.level_of_addr(5 << 40), None);
    }
}
