//! A single level of the platform memory hierarchy.

use std::fmt;

/// The technology class of a memory level.
///
/// The kind is descriptive: all cost figures live in [`MemoryLevel`] itself.
/// It is used by reports and by placement heuristics (e.g. "prefer the
/// scratchpad for the hottest dedicated pool").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LevelKind {
    /// Software-controlled on-chip SRAM (no tags, single-cycle).
    Scratchpad,
    /// Generic on-chip SRAM (e.g. an L2 memory).
    Sram,
    /// Off-chip or embedded DRAM main memory.
    Dram,
    /// Non-volatile flash (rarely a DM-pool target; modeled for completeness).
    Flash,
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LevelKind::Scratchpad => "scratchpad",
            LevelKind::Sram => "sram",
            LevelKind::Dram => "dram",
            LevelKind::Flash => "flash",
        };
        f.write_str(s)
    }
}

/// One level of the memory hierarchy: capacity plus per-access costs.
///
/// Energy is tracked in integer **picojoules per access** and latency in
/// integer **cycles per access**, so all derived totals are exact integers.
/// The default figures in [`presets`](crate::presets) are CACTI-style
/// ballpark values for a 0.13–0.18 µm embedded platform, which is the class
/// of platform the DATE 2006 paper evaluates on; only the *ratios* between
/// levels matter for the shape of the exploration results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLevel {
    name: String,
    kind: LevelKind,
    capacity: u64,
    read_energy_pj: u64,
    write_energy_pj: u64,
    read_latency: u32,
    write_latency: u32,
    leakage_pj_per_kcycle: u64,
}

impl MemoryLevel {
    /// Starts building a level with the given name and kind.
    ///
    /// ```
    /// use dmx_memhier::{LevelKind, MemoryLevel};
    /// let sp = MemoryLevel::builder("L1", LevelKind::Scratchpad)
    ///     .capacity(64 * 1024)
    ///     .read_energy_pj(50)
    ///     .write_energy_pj(55)
    ///     .read_latency(1)
    ///     .write_latency(1)
    ///     .build();
    /// assert_eq!(sp.capacity(), 65536);
    /// ```
    pub fn builder(name: impl Into<String>, kind: LevelKind) -> MemoryLevelBuilder {
        MemoryLevelBuilder {
            name: name.into(),
            kind,
            capacity: 0,
            read_energy_pj: 1,
            write_energy_pj: 1,
            read_latency: 1,
            write_latency: 1,
            leakage_pj_per_kcycle: 0,
        }
    }

    /// Human-readable level name, unique within a hierarchy.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Technology class of this level.
    pub fn kind(&self) -> LevelKind {
        self.kind
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Energy per read access, in picojoules.
    pub fn read_energy_pj(&self) -> u64 {
        self.read_energy_pj
    }

    /// Energy per write access, in picojoules.
    pub fn write_energy_pj(&self) -> u64 {
        self.write_energy_pj
    }

    /// Latency of one read access, in CPU cycles.
    pub fn read_latency(&self) -> u32 {
        self.read_latency
    }

    /// Latency of one write access, in CPU cycles.
    pub fn write_latency(&self) -> u32 {
        self.write_latency
    }

    /// Static (leakage/refresh) energy, in picojoules per 1000 cycles.
    /// Zero means leakage is not modeled for this level.
    pub fn leakage_pj_per_kcycle(&self) -> u64 {
        self.leakage_pj_per_kcycle
    }
}

impl fmt::Display for MemoryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} B, r/w {}/{} pJ, {}/{} cyc)",
            self.name,
            self.kind,
            self.capacity,
            self.read_energy_pj,
            self.write_energy_pj,
            self.read_latency,
            self.write_latency
        )
    }
}

/// Builder for [`MemoryLevel`]; see [`MemoryLevel::builder`].
#[derive(Debug, Clone)]
pub struct MemoryLevelBuilder {
    name: String,
    kind: LevelKind,
    capacity: u64,
    read_energy_pj: u64,
    write_energy_pj: u64,
    read_latency: u32,
    write_latency: u32,
    leakage_pj_per_kcycle: u64,
}

impl MemoryLevelBuilder {
    /// Sets the usable capacity in bytes.
    pub fn capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Sets the per-read energy in picojoules (must be non-zero).
    pub fn read_energy_pj(mut self, pj: u64) -> Self {
        self.read_energy_pj = pj;
        self
    }

    /// Sets the per-write energy in picojoules (must be non-zero).
    pub fn write_energy_pj(mut self, pj: u64) -> Self {
        self.write_energy_pj = pj;
        self
    }

    /// Sets the read latency in cycles (must be non-zero).
    pub fn read_latency(mut self, cycles: u32) -> Self {
        self.read_latency = cycles;
        self
    }

    /// Sets the write latency in cycles (must be non-zero).
    pub fn write_latency(mut self, cycles: u32) -> Self {
        self.write_latency = cycles;
        self
    }

    /// Sets the static (leakage/refresh) energy in picojoules per 1000
    /// cycles. Defaults to 0 (leakage not modeled).
    pub fn leakage_pj_per_kcycle(mut self, pj: u64) -> Self {
        self.leakage_pj_per_kcycle = pj;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if any energy or latency figure is zero — a zero-cost memory
    /// would make every placement trivially optimal and always indicates a
    /// configuration bug.
    pub fn build(self) -> MemoryLevel {
        assert!(
            self.read_energy_pj > 0 && self.write_energy_pj > 0,
            "per-access energy must be non-zero for level `{}`",
            self.name
        );
        assert!(
            self.read_latency > 0 && self.write_latency > 0,
            "access latency must be non-zero for level `{}`",
            self.name
        );
        MemoryLevel {
            name: self.name,
            kind: self.kind,
            capacity: self.capacity,
            read_energy_pj: self.read_energy_pj,
            write_energy_pj: self.write_energy_pj,
            read_latency: self.read_latency,
            write_latency: self.write_latency,
            leakage_pj_per_kcycle: self.leakage_pj_per_kcycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let l = MemoryLevel::builder("main", LevelKind::Dram)
            .capacity(4 << 20)
            .read_energy_pj(1500)
            .write_energy_pj(1600)
            .read_latency(20)
            .write_latency(22)
            .leakage_pj_per_kcycle(25)
            .build();
        assert_eq!(l.name(), "main");
        assert_eq!(l.kind(), LevelKind::Dram);
        assert_eq!(l.capacity(), 4 << 20);
        assert_eq!(l.read_energy_pj(), 1500);
        assert_eq!(l.write_energy_pj(), 1600);
        assert_eq!(l.read_latency(), 20);
        assert_eq!(l.write_latency(), 22);
        assert_eq!(l.leakage_pj_per_kcycle(), 25);
    }

    #[test]
    fn leakage_defaults_to_zero() {
        let l = MemoryLevel::builder("x", LevelKind::Sram)
            .capacity(1)
            .build();
        assert_eq!(l.leakage_pj_per_kcycle(), 0);
    }

    #[test]
    #[should_panic(expected = "energy must be non-zero")]
    fn zero_energy_rejected() {
        let _ = MemoryLevel::builder("bad", LevelKind::Sram)
            .read_energy_pj(0)
            .build();
    }

    #[test]
    #[should_panic(expected = "latency must be non-zero")]
    fn zero_latency_rejected() {
        let _ = MemoryLevel::builder("bad", LevelKind::Sram)
            .read_latency(0)
            .build();
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let l = MemoryLevel::builder("L1", LevelKind::Scratchpad)
            .capacity(1024)
            .build();
        let s = l.to_string();
        assert!(s.contains("L1"));
        assert!(s.contains("scratchpad"));
    }

    #[test]
    fn kind_display_is_lowercase() {
        assert_eq!(LevelKind::Dram.to_string(), "dram");
        assert_eq!(LevelKind::Flash.to_string(), "flash");
    }
}
