//! Per-level read/write access counters.
//!
//! The allocator simulator charges every metadata touch (free-list link
//! update, header read, fit-search probe, ...) and every application access
//! to a dynamic block against the memory level that holds the owning pool.
//! These counters are the raw material for all four metrics the paper
//! reports: accesses, footprint, energy and execution time.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::hierarchy::LevelId;

/// Read/write access counts for one memory level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct AccessCounts {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
}

impl AccessCounts {
    /// A zeroed counter pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses (reads + writes).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl Add for AccessCounts {
    type Output = AccessCounts;

    fn add(self, rhs: AccessCounts) -> AccessCounts {
        AccessCounts {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl AddAssign for AccessCounts {
    fn add_assign(&mut self, rhs: AccessCounts) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

impl fmt::Display for AccessCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r={} w={}", self.reads, self.writes)
    }
}

/// Access counters for every level of a hierarchy.
///
/// Constructed with the hierarchy's level count; indexing with a foreign
/// [`LevelId`] is a logic error and panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSet {
    per_level: Vec<AccessCounts>,
}

impl CounterSet {
    /// Creates counters for a hierarchy with `levels` levels, all zero.
    pub fn new(levels: usize) -> Self {
        CounterSet {
            per_level: vec![AccessCounts::default(); levels],
        }
    }

    /// Number of levels tracked.
    pub fn len(&self) -> usize {
        self.per_level.len()
    }

    /// `true` if no levels are tracked.
    pub fn is_empty(&self) -> bool {
        self.per_level.is_empty()
    }

    /// Records `n` read accesses at `level`.
    #[inline]
    pub fn record_reads(&mut self, level: LevelId, n: u64) {
        self.per_level[level.index()].reads += n;
    }

    /// Records `n` write accesses at `level`.
    #[inline]
    pub fn record_writes(&mut self, level: LevelId, n: u64) {
        self.per_level[level.index()].writes += n;
    }

    /// The counts accumulated at `level`.
    pub fn level(&self, level: LevelId) -> AccessCounts {
        self.per_level[level.index()]
    }

    /// Iterates over `(LevelId, AccessCounts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LevelId, AccessCounts)> + '_ {
        self.per_level
            .iter()
            .enumerate()
            .map(|(i, c)| (LevelId(i as u16), *c))
    }

    /// Total accesses summed over every level.
    pub fn total_accesses(&self) -> u64 {
        self.per_level.iter().map(|c| c.total()).sum()
    }

    /// Total reads summed over every level.
    pub fn total_reads(&self) -> u64 {
        self.per_level.iter().map(|c| c.reads).sum()
    }

    /// Total writes summed over every level.
    pub fn total_writes(&self) -> u64 {
        self.per_level.iter().map(|c| c.writes).sum()
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets track a different number of levels.
    pub fn merge(&mut self, other: &CounterSet) {
        assert_eq!(
            self.per_level.len(),
            other.per_level.len(),
            "cannot merge counter sets over different hierarchies"
        );
        for (a, b) in self.per_level.iter_mut().zip(&other.per_level) {
            *a += *b;
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for c in &mut self.per_level {
            *c = AccessCounts::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut c = CounterSet::new(2);
        c.record_reads(LevelId(0), 3);
        c.record_writes(LevelId(0), 2);
        c.record_reads(LevelId(1), 10);
        assert_eq!(
            c.level(LevelId(0)),
            AccessCounts {
                reads: 3,
                writes: 2
            }
        );
        assert_eq!(c.total_accesses(), 15);
        assert_eq!(c.total_reads(), 13);
        assert_eq!(c.total_writes(), 2);
    }

    #[test]
    fn merge_adds_counter_pairs() {
        let mut a = CounterSet::new(2);
        a.record_reads(LevelId(0), 1);
        let mut b = CounterSet::new(2);
        b.record_reads(LevelId(0), 2);
        b.record_writes(LevelId(1), 5);
        a.merge(&b);
        assert_eq!(a.level(LevelId(0)).reads, 3);
        assert_eq!(a.level(LevelId(1)).writes, 5);
    }

    #[test]
    #[should_panic(expected = "different hierarchies")]
    fn merge_rejects_mismatched_len() {
        let mut a = CounterSet::new(1);
        let b = CounterSet::new(2);
        a.merge(&b);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut c = CounterSet::new(1);
        c.record_writes(LevelId(0), 7);
        c.reset();
        assert_eq!(c.total_accesses(), 0);
    }

    #[test]
    fn access_counts_add() {
        let a = AccessCounts {
            reads: 1,
            writes: 2,
        };
        let b = AccessCounts {
            reads: 3,
            writes: 4,
        };
        assert_eq!(
            a + b,
            AccessCounts {
                reads: 4,
                writes: 6
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn iter_yields_ordered_ids() {
        let mut c = CounterSet::new(3);
        c.record_reads(LevelId(2), 1);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].0, LevelId(2));
        assert_eq!(v[2].1.reads, 1);
    }

    #[test]
    fn display_access_counts() {
        let a = AccessCounts {
            reads: 1,
            writes: 2,
        };
        assert_eq!(a.to_string(), "r=1 w=2");
    }
}
