//! Derived cost metrics: energy and access time from raw access counters.

use crate::counters::CounterSet;
use crate::hierarchy::MemoryHierarchy;

/// Fixed CPU-side cost parameters of the allocator, independent of the
/// memory hierarchy.
///
/// The paper reports *execution time* alongside memory metrics; time is
/// modeled as memory-access stall cycles plus a fixed per-operation CPU cost
/// (argument marshalling, branch logic) for each `malloc`/`free` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostParams {
    /// CPU cycles consumed by one allocator entry (`malloc` or `free`)
    /// before any memory access is issued.
    pub cpu_cycles_per_op: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        // A trimmed embedded allocator entry: call, dispatch, size classing.
        CostParams {
            cpu_cycles_per_op: 12,
        }
    }
}

/// Maps per-level access counters to energy (picojoules) and time (cycles)
/// using the per-access figures of a [`MemoryHierarchy`].
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'h> {
    hierarchy: &'h MemoryHierarchy,
    params: CostParams,
}

impl<'h> CostModel<'h> {
    /// A cost model over `hierarchy` with default [`CostParams`].
    pub fn new(hierarchy: &'h MemoryHierarchy) -> Self {
        CostModel {
            hierarchy,
            params: CostParams::default(),
        }
    }

    /// A cost model with explicit CPU-side parameters.
    pub fn with_params(hierarchy: &'h MemoryHierarchy, params: CostParams) -> Self {
        CostModel { hierarchy, params }
    }

    /// The CPU-side parameters in use.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// Total access energy in picojoules.
    ///
    /// # Panics
    ///
    /// Panics if `counters` tracks a different number of levels than the
    /// hierarchy this model was built over.
    pub fn energy_pj(&self, counters: &CounterSet) -> u64 {
        self.check(counters);
        let mut pj = 0u64;
        for (id, c) in counters.iter() {
            let level = self.hierarchy.level(id);
            pj += c.reads * level.read_energy_pj() + c.writes * level.write_energy_pj();
        }
        pj
    }

    /// Total memory-access time in cycles (no CPU op cost).
    ///
    /// # Panics
    ///
    /// Panics if `counters` does not match the hierarchy (see
    /// [`CostModel::energy_pj`]).
    pub fn access_cycles(&self, counters: &CounterSet) -> u64 {
        self.check(counters);
        let mut cycles = 0u64;
        for (id, c) in counters.iter() {
            let level = self.hierarchy.level(id);
            cycles += c.reads * u64::from(level.read_latency())
                + c.writes * u64::from(level.write_latency());
        }
        cycles
    }

    /// Total execution time in cycles: access stalls plus the fixed CPU cost
    /// of `ops` allocator operations.
    pub fn total_cycles(&self, counters: &CounterSet, ops: u64) -> u64 {
        self.access_cycles(counters) + ops * self.params.cpu_cycles_per_op
    }

    /// Static (leakage/refresh) energy over `cycles` of execution, summed
    /// over every level of the hierarchy, in picojoules.
    pub fn static_energy_pj(&self, cycles: u64) -> u64 {
        let per_kcycle: u64 = self
            .hierarchy
            .iter()
            .map(|(_, l)| l.leakage_pj_per_kcycle())
            .sum();
        per_kcycle * cycles / 1000
    }

    /// Total energy: dynamic access energy plus static energy over the
    /// run's `cycles`.
    pub fn total_energy_pj(&self, counters: &CounterSet, cycles: u64) -> u64 {
        self.energy_pj(counters) + self.static_energy_pj(cycles)
    }

    fn check(&self, counters: &CounterSet) {
        assert_eq!(
            counters.len(),
            self.hierarchy.len(),
            "counter set does not match hierarchy level count"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::LevelId;
    use crate::level::{LevelKind, MemoryLevel};

    fn two_level() -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            MemoryLevel::builder("sp", LevelKind::Scratchpad)
                .capacity(64 << 10)
                .read_energy_pj(50)
                .write_energy_pj(60)
                .read_latency(1)
                .write_latency(1)
                .build(),
            MemoryLevel::builder("main", LevelKind::Dram)
                .capacity(4 << 20)
                .read_energy_pj(1000)
                .write_energy_pj(1200)
                .read_latency(20)
                .write_latency(25)
                .build(),
        ])
        .unwrap()
    }

    #[test]
    fn energy_weights_levels() {
        let h = two_level();
        let cost = CostModel::new(&h);
        let mut c = CounterSet::new(2);
        c.record_reads(LevelId(0), 10); // 10 * 50
        c.record_writes(LevelId(1), 2); // 2 * 1200
        assert_eq!(cost.energy_pj(&c), 500 + 2400);
    }

    #[test]
    fn cycles_weight_latencies() {
        let h = two_level();
        let cost = CostModel::new(&h);
        let mut c = CounterSet::new(2);
        c.record_reads(LevelId(1), 3); // 3 * 20
        c.record_writes(LevelId(0), 4); // 4 * 1
        assert_eq!(cost.access_cycles(&c), 64);
    }

    #[test]
    fn total_cycles_adds_cpu_cost() {
        let h = two_level();
        let cost = CostModel::with_params(
            &h,
            CostParams {
                cpu_cycles_per_op: 10,
            },
        );
        let c = CounterSet::new(2);
        assert_eq!(cost.total_cycles(&c, 5), 50);
    }

    #[test]
    fn zero_counters_zero_cost() {
        let h = two_level();
        let cost = CostModel::new(&h);
        let c = CounterSet::new(2);
        assert_eq!(cost.energy_pj(&c), 0);
        assert_eq!(cost.access_cycles(&c), 0);
    }

    #[test]
    #[should_panic(expected = "does not match hierarchy")]
    fn mismatched_counters_panic() {
        let h = two_level();
        let cost = CostModel::new(&h);
        let c = CounterSet::new(3);
        let _ = cost.energy_pj(&c);
    }

    #[test]
    fn default_params_nonzero() {
        assert!(CostParams::default().cpu_cycles_per_op > 0);
    }

    #[test]
    fn static_energy_scales_with_cycles() {
        let h = MemoryHierarchy::new(vec![
            MemoryLevel::builder("a", LevelKind::Sram)
                .capacity(1)
                .leakage_pj_per_kcycle(10)
                .build(),
            MemoryLevel::builder("b", LevelKind::Dram)
                .capacity(1)
                .leakage_pj_per_kcycle(30)
                .build(),
        ])
        .unwrap();
        let cost = CostModel::new(&h);
        assert_eq!(cost.static_energy_pj(1000), 40);
        assert_eq!(cost.static_energy_pj(500), 20);
        assert_eq!(cost.static_energy_pj(0), 0);
        let c = CounterSet::new(2);
        assert_eq!(cost.total_energy_pj(&c, 2000), 80);
    }

    #[test]
    fn zero_leakage_means_zero_static_energy() {
        let h = two_level();
        let cost = CostModel::new(&h);
        assert_eq!(cost.static_energy_pj(1_000_000), 0);
    }
}
