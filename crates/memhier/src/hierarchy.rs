//! The ordered collection of memory levels making up a platform.

use std::fmt;

use crate::error::HierarchyError;
use crate::level::MemoryLevel;

/// Index of a level within a [`MemoryHierarchy`].
///
/// Level 0 is the fastest/closest level (e.g. an L1 scratchpad); higher
/// indices are further from the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LevelId(pub u16);

impl LevelId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A level selector that can be resolved against any hierarchy.
///
/// Absolute [`LevelId`]s only make sense for one concrete platform; a
/// parameter space that is evaluated across *several* platforms (the
/// scenario suites in `dmx-core`) needs to say "the scratchpad" or "main
/// memory" without committing to an index. `Fixed` keeps the old absolute
/// behaviour; `Fastest`/`Slowest` resolve per hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelChoice {
    /// A concrete level index (must exist on every hierarchy used).
    Fixed(LevelId),
    /// The fastest (closest, index 0) level of whatever hierarchy the
    /// configuration is materialized on.
    Fastest,
    /// The slowest (furthest, highest-index) level — conventionally main
    /// memory.
    Slowest,
}

impl LevelChoice {
    /// Resolves the choice to a concrete level of `hierarchy`.
    pub fn resolve(self, hierarchy: &MemoryHierarchy) -> LevelId {
        match self {
            LevelChoice::Fixed(id) => id,
            LevelChoice::Fastest => hierarchy.fastest(),
            LevelChoice::Slowest => hierarchy.slowest(),
        }
    }

    /// Short tag for configuration labels ("L1", "fastest", "slowest").
    pub fn tag(self) -> String {
        match self {
            LevelChoice::Fixed(id) => id.to_string(),
            LevelChoice::Fastest => "fastest".to_owned(),
            LevelChoice::Slowest => "slowest".to_owned(),
        }
    }
}

impl From<LevelId> for LevelChoice {
    fn from(id: LevelId) -> Self {
        LevelChoice::Fixed(id)
    }
}

impl fmt::Display for LevelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

/// An ordered, validated set of [`MemoryLevel`]s.
///
/// Levels are ordered fastest-first. The hierarchy is immutable once built:
/// the exploration tool treats the platform as fixed while it varies the
/// allocator configuration (the paper's premise — customization happens in
/// middleware, not platform hardware).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryHierarchy {
    levels: Vec<MemoryLevel>,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from fastest to slowest level.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::Empty`] for an empty level list and
    /// [`HierarchyError::DuplicateName`] if two levels share a name.
    pub fn new(levels: Vec<MemoryLevel>) -> Result<Self, HierarchyError> {
        if levels.is_empty() {
            return Err(HierarchyError::Empty);
        }
        for (i, a) in levels.iter().enumerate() {
            for b in levels.iter().skip(i + 1) {
                if a.name() == b.name() {
                    return Err(HierarchyError::DuplicateName(a.name().to_owned()));
                }
            }
        }
        Ok(MemoryHierarchy { levels })
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` if the hierarchy has no levels (never true for a built value).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The level with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; ids should come from the same
    /// hierarchy via [`MemoryHierarchy::ids`] or
    /// [`MemoryHierarchy::id_by_name`].
    pub fn level(&self, id: LevelId) -> &MemoryLevel {
        &self.levels[id.index()]
    }

    /// Iterates over `(LevelId, &MemoryLevel)` pairs, fastest first.
    pub fn iter(&self) -> impl Iterator<Item = (LevelId, &MemoryLevel)> {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| (LevelId(i as u16), l))
    }

    /// Iterates over the ids of all levels, fastest first.
    pub fn ids(&self) -> impl Iterator<Item = LevelId> + '_ {
        (0..self.levels.len()).map(|i| LevelId(i as u16))
    }

    /// Looks a level up by name.
    pub fn id_by_name(&self, name: &str) -> Option<LevelId> {
        self.levels
            .iter()
            .position(|l| l.name() == name)
            .map(|i| LevelId(i as u16))
    }

    /// Id of the fastest (first) level.
    pub fn fastest(&self) -> LevelId {
        LevelId(0)
    }

    /// Id of the slowest (last) level — the conventional default placement
    /// for pools that were not explicitly mapped.
    pub fn slowest(&self) -> LevelId {
        LevelId((self.levels.len() - 1) as u16)
    }

    /// Total capacity over all levels, in bytes.
    pub fn total_capacity(&self) -> u64 {
        self.levels.iter().map(|l| l.capacity()).sum()
    }

    /// `true` if `id` belongs to this hierarchy.
    pub fn contains(&self, id: LevelId) -> bool {
        id.index() < self.levels.len()
    }
}

impl fmt::Display for MemoryHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, level) in self.iter() {
            writeln!(f, "{id}: {level}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::LevelKind;

    fn mk(name: &str, cap: u64) -> MemoryLevel {
        MemoryLevel::builder(name, LevelKind::Sram)
            .capacity(cap)
            .build()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(MemoryHierarchy::new(vec![]), Err(HierarchyError::Empty));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = MemoryHierarchy::new(vec![mk("a", 1), mk("a", 2)]).unwrap_err();
        assert_eq!(err, HierarchyError::DuplicateName("a".into()));
    }

    #[test]
    fn lookup_by_name_and_id() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64), mk("main", 4096)]).unwrap();
        let main = h.id_by_name("main").unwrap();
        assert_eq!(main, LevelId(1));
        assert_eq!(h.level(main).capacity(), 4096);
        assert!(h.id_by_name("nope").is_none());
    }

    #[test]
    fn fastest_and_slowest() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64), mk("l2", 128), mk("main", 4096)]).unwrap();
        assert_eq!(h.fastest(), LevelId(0));
        assert_eq!(h.slowest(), LevelId(2));
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
    }

    #[test]
    fn level_choice_resolves_per_hierarchy() {
        let two = MemoryHierarchy::new(vec![mk("l1", 64), mk("main", 4096)]).unwrap();
        let one = MemoryHierarchy::new(vec![mk("main", 4096)]).unwrap();
        assert_eq!(LevelChoice::Slowest.resolve(&two), LevelId(1));
        assert_eq!(LevelChoice::Slowest.resolve(&one), LevelId(0));
        assert_eq!(LevelChoice::Fastest.resolve(&two), LevelId(0));
        assert_eq!(LevelChoice::Fixed(LevelId(1)).resolve(&two), LevelId(1));
        assert_eq!(
            LevelChoice::from(LevelId(1)),
            LevelChoice::Fixed(LevelId(1))
        );
        assert_eq!(LevelChoice::Fixed(LevelId(1)).tag(), "L1");
        assert_eq!(LevelChoice::Slowest.to_string(), "slowest");
    }

    #[test]
    fn total_capacity_sums_levels() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64), mk("main", 4096)]).unwrap();
        assert_eq!(h.total_capacity(), 4160);
    }

    #[test]
    fn iter_is_ordered() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64), mk("main", 4096)]).unwrap();
        let names: Vec<&str> = h.iter().map(|(_, l)| l.name()).collect();
        assert_eq!(names, ["l1", "main"]);
        let ids: Vec<LevelId> = h.ids().collect();
        assert_eq!(ids, [LevelId(0), LevelId(1)]);
    }

    #[test]
    fn contains_checks_range() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64)]).unwrap();
        assert!(h.contains(LevelId(0)));
        assert!(!h.contains(LevelId(1)));
    }

    #[test]
    fn display_lists_all_levels() {
        let h = MemoryHierarchy::new(vec![mk("l1", 64), mk("main", 4096)]).unwrap();
        let s = h.to_string();
        assert!(s.contains("L0"));
        assert!(s.contains("main"));
    }
}
