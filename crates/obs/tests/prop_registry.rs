//! Property tests for the metric registry: concurrent counter and
//! histogram updates must fold to exactly the sum of every delta once
//! the writers are quiescent, and the log₂ bucket layout must place
//! every value in the one bucket whose bounds contain it.

#![cfg(feature = "enabled")]

use dmx_obs::{bucket_bounds, bucket_index, Counter, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

const THREADS: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Snapshot == sum of deltas: 8 threads each add their own slice of
    /// deltas; once joined, the counter's value is the exact total.
    #[test]
    fn counter_snapshot_equals_sum_of_deltas(
        deltas in prop::collection::vec(0u64..10_000, THREADS * 4),
    ) {
        let c = Counter::new();
        let cref = &c;
        std::thread::scope(|s| {
            for chunk in deltas.chunks(deltas.len() / THREADS) {
                s.spawn(move || {
                    for &d in chunk {
                        cref.add(d);
                    }
                });
            }
        });
        prop_assert_eq!(c.value(), deltas.iter().sum::<u64>());
    }

    /// Histograms under 8 concurrent recorders: total count, sum and
    /// per-bucket counts all match a sequential reference fold.
    #[test]
    fn histogram_concurrent_matches_reference(
        values in prop::collection::vec(any::<u64>(), THREADS * 4),
    ) {
        let h = Histogram::new();
        let href = &h;
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len() / THREADS) {
                s.spawn(move || {
                    for &v in chunk {
                        href.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().fold(0u64, |a, &v| a.wrapping_add(v)));
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));

        let mut expected = [0u64; HIST_BUCKETS];
        for &v in &values {
            expected[bucket_index(v)] += 1;
        }
        for &(lo, hi, count) in &snap.buckets {
            let k = bucket_index(lo);
            prop_assert_eq!(bucket_bounds(k), (lo, hi));
            prop_assert_eq!(count, expected[k]);
        }
        let nonzero = expected.iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(snap.buckets.len(), nonzero);
    }

    /// Every value lands in exactly the bucket whose `[lo, hi]` range
    /// contains it, and the bucket layout tiles the `u64` range.
    #[test]
    fn bucket_index_matches_bounds(v in any::<u64>()) {
        let k = bucket_index(v);
        let (lo, hi) = bucket_bounds(k);
        prop_assert!(lo <= v && v <= hi, "v={} outside bucket {} [{}, {}]", v, k, lo, hi);
    }
}

/// The boundary cases that matter: zeros get their own bucket, powers
/// of two open a new bucket, and `2^k - 1` closes the previous one.
#[test]
fn bucket_boundary_edges() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for k in 1..64 {
        let pow = 1u64 << k;
        assert_eq!(bucket_index(pow), k + 1, "2^{k} must open bucket {}", k + 1);
        assert_eq!(bucket_index(pow - 1), k, "2^{k}-1 must stay in bucket {k}");
    }
    assert_eq!(bucket_index(u64::MAX), 64);

    // Bucket bounds tile the range with no gaps or overlaps.
    assert_eq!(bucket_bounds(0), (0, 0));
    let mut prev_hi = 0u64;
    for k in 1..HIST_BUCKETS {
        let (lo, hi) = bucket_bounds(k);
        assert_eq!(
            lo,
            prev_hi + 1,
            "bucket {k} must start after bucket {}",
            k - 1
        );
        assert!(hi >= lo);
        prev_hi = hi;
    }
    assert_eq!(prev_hi, u64::MAX);
}
