//! The span timeline: begin/end instrumentation recorded into
//! per-thread ring buffers with monotonic timestamps.
//!
//! Recording a span is two pushes into a thread-owned ring — no
//! cross-thread synchronisation on the hot path beyond the one-time
//! registration of the thread's timeline. Timestamps come from a single
//! process-wide [`std::time::Instant`] epoch so events from different
//! threads land on one comparable axis.
//!
//! Span recording is gated at runtime by [`crate::set_recording`]: the
//! CLI only switches it on when the user asked for a trace, so plain
//! runs skip even the (cheap) ring push. With the `enabled` feature off
//! the whole module is compiled out.

#[cfg(feature = "enabled")]
use std::cell::RefCell;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "enabled")]
use std::sync::{Arc, Mutex, OnceLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

/// Ring capacity per thread. At ~24 bytes/event this is well under a
/// megabyte per worker; a long run overwrites nothing — events past the
/// cap are counted in `dropped` instead, so the exporter can say so.
#[cfg(feature = "enabled")]
const RING_CAP: usize = 32 * 1024;

/// What a timeline event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span opened here.
    Begin,
    /// The most recent unmatched `Begin` on this thread closed here.
    End,
    /// A zero-duration marker.
    Instant,
}

/// One timeline event.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Static span name from [`crate::names`].
    pub name: &'static str,
    /// Begin / end / instant.
    pub kind: SpanKind,
    /// Nanoseconds since the process-wide epoch.
    pub t_ns: u64,
    /// A free-form argument (batch size, generation index, …).
    pub arg: u64,
}

/// A thread's recorded events, drained by the exporter.
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    /// Dense per-process thread id (registration order).
    pub tid: u64,
    /// Recorded events in timestamp order.
    pub events: Vec<SpanEvent>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

#[cfg(feature = "enabled")]
#[derive(Debug)]
struct ThreadTimeline {
    tid: u64,
    // The owning thread pushes; the exporter locks to read. Contention
    // is nil: the exporter only runs at end-of-run or on the progress
    // tick, and `try-push` from the owner is a plain uncontended lock.
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Mutex<Vec<Arc<ThreadTimeline>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadTimeline>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(feature = "enabled")]
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[cfg(feature = "enabled")]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

#[cfg(feature = "enabled")]
fn with_local<R>(f: impl FnOnce(&ThreadTimeline) -> R) -> R {
    thread_local! {
        static LOCAL: RefCell<Option<Arc<ThreadTimeline>>> = const { RefCell::new(None) };
    }
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let mut reg = registry().lock().unwrap();
            let tl = Arc::new(ThreadTimeline {
                tid: reg.len() as u64,
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            });
            reg.push(Arc::clone(&tl));
            *slot = Some(tl);
        }
        f(slot.as_ref().unwrap())
    })
}

#[cfg(feature = "enabled")]
fn push(name: &'static str, kind: SpanKind, arg: u64) {
    let t_ns = now_ns();
    with_local(|tl| {
        let mut events = tl.events.lock().unwrap();
        if events.len() < RING_CAP {
            events.push(SpanEvent {
                name,
                kind,
                t_ns,
                arg,
            });
        } else {
            tl.dropped.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// Records a zero-duration marker on the calling thread's timeline.
#[cfg(feature = "enabled")]
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if crate::recording() {
        push(name, SpanKind::Instant, arg);
    }
}

/// Opens a span; the returned guard closes it on drop. When recording
/// is off (or the guard's begin raced recording being switched off) the
/// guard is inert.
#[cfg(feature = "enabled")]
#[inline]
pub fn span(name: &'static str, arg: u64) -> SpanGuard {
    if crate::recording() {
        push(name, SpanKind::Begin, arg);
        SpanGuard {
            name: Some(name),
            arg,
        }
    } else {
        SpanGuard { name: None, arg: 0 }
    }
}

/// RAII guard that records the matching `End` event when dropped.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub struct SpanGuard {
    name: Option<&'static str>,
    arg: u64,
}

#[cfg(feature = "enabled")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            push(name, SpanKind::End, self.arg);
        }
    }
}

/// Snapshots every thread's recorded events, in thread-registration
/// order. Events within a thread are already timestamp-ordered.
#[cfg(feature = "enabled")]
pub fn drain_timelines() -> Vec<ThreadEvents> {
    let reg = registry().lock().unwrap();
    reg.iter()
        .map(|tl| ThreadEvents {
            tid: tl.tid,
            events: tl.events.lock().unwrap().clone(),
            dropped: tl.dropped.load(Ordering::Relaxed),
        })
        .collect()
}

/// Clears every thread's ring (timelines stay registered).
#[cfg(feature = "enabled")]
pub fn clear_timelines() {
    let reg = registry().lock().unwrap();
    for tl in reg.iter() {
        tl.events.lock().unwrap().clear();
        tl.dropped.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Compiled-out no-op twins.
// ---------------------------------------------------------------------

/// Records a zero-duration marker (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn instant(_name: &'static str, _arg: u64) {}

/// Opens a span (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn span(_name: &'static str, _arg: u64) -> SpanGuard {
    SpanGuard
}

/// RAII span guard (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct SpanGuard;

/// Snapshots every thread's events (compiled-out: always empty).
#[cfg(not(feature = "enabled"))]
pub fn drain_timelines() -> Vec<ThreadEvents> {
    Vec::new()
}

/// Clears every thread's ring (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
pub fn clear_timelines() {}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Both tests toggle the global recording flag; serialize them so the
    // parallel test runner can't interleave the toggles.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap()
    }

    #[test]
    fn spans_record_when_enabled() {
        let _gate = lock();
        crate::set_recording(true);
        {
            let _g = span("test.outer", 7);
            instant("test.mark", 1);
        }
        crate::set_recording(false);
        let mine: Vec<SpanEvent> = drain_timelines()
            .into_iter()
            .flat_map(|t| t.events)
            .filter(|e| e.name.starts_with("test."))
            .collect();
        let begins = mine
            .iter()
            .filter(|e| e.name == "test.outer" && e.kind == SpanKind::Begin)
            .count();
        let ends = mine
            .iter()
            .filter(|e| e.name == "test.outer" && e.kind == SpanKind::End)
            .count();
        let marks = mine
            .iter()
            .filter(|e| e.name == "test.mark" && e.kind == SpanKind::Instant)
            .count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert_eq!(marks, 1);
    }

    #[test]
    fn recording_off_records_nothing() {
        let _gate = lock();
        crate::set_recording(false);
        {
            let _g = span("test.silent", 0);
            instant("test.silent.mark", 0);
        }
        let silent = drain_timelines()
            .into_iter()
            .flat_map(|t| t.events)
            .filter(|e| e.name.starts_with("test.silent"))
            .count();
        assert_eq!(silent, 0);
    }
}
