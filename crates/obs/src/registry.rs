//! The lock-free metric registry: sharded counters, gauges and
//! log₂-bucketed histograms.
//!
//! All metric types are plain atomics with relaxed ordering — an update
//! is one `fetch_add` on a cache-line-padded shard picked by a
//! thread-local index, so concurrent workers never contend on one line.
//! A snapshot ([`Counter::value`], [`Histogram::read`], …) folds the
//! shards/buckets at read time; it is a *point-in-time* view: concurrent
//! updates may or may not be included, but once all writers are quiescent
//! the snapshot equals the exact sum of every update ever made (the
//! property the registry proptests pin under 8 threads).
//!
//! With the `enabled` feature off, every type in this module is a
//! zero-sized no-op with the same API, so instrumented code compiles
//! unchanged and costs nothing.

#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. Enough for a machine's worth of evaluation
/// workers (CI runs up to `DMX_THREADS=8`) to land on distinct lines.
#[cfg(feature = "enabled")]
const SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k - 1]`, up to bucket 64 for the top of
/// the `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// One cache line per shard so concurrent `fetch_add`s never false-share.
#[cfg(feature = "enabled")]
#[repr(align(64))]
#[derive(Debug)]
struct Shard(AtomicU64);

/// The shard a thread's counter updates land on: assigned once per
/// thread, round-robin over the shard space.
#[cfg(feature = "enabled")]
fn thread_shard() -> usize {
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// A monotone event counter, sharded per thread.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

#[cfg(feature = "enabled")]
impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Counter {
            shards: [const { Shard(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Point-in-time sum over all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }

    /// The metric's current value for snapshots.
    pub fn read(&self) -> MetricValue {
        MetricValue::Counter(self.value())
    }
}

/// A signed instantaneous value (current generation, live front size).
/// One atomic — gauges are set from one place at a time, not hammered.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub struct Gauge {
    value: AtomicI64,
}

#[cfg(feature = "enabled")]
impl Gauge {
    /// A zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Zeroes the gauge.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }

    /// The metric's current value for snapshots.
    pub fn read(&self) -> MetricValue {
        MetricValue::Gauge(self.value())
    }
}

/// A log₂-bucketed histogram over `u64` samples.
///
/// `record(v)` lands in bucket 0 for `v == 0` and in bucket
/// `64 - v.leading_zeros()` otherwise, i.e. bucket `k ≥ 1` spans
/// `[2^(k-1), 2^k - 1]`. Buckets are independent atomics, so concurrent
/// recorders only contend when they hit the *same* power-of-two band.
#[cfg(feature = "enabled")]
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// The bucket index a value lands in (shared with the proptests).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive `[lo, hi]` range of values bucket `k` covers.
pub fn bucket_bounds(k: usize) -> (u64, u64) {
    assert!(k < HIST_BUCKETS, "bucket index out of range");
    if k == 0 {
        (0, 0)
    } else if k == 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (k - 1), (1u64 << k) - 1)
    }
}

#[cfg(feature = "enabled")]
impl Histogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time snapshot: total count, sum, max, and every
    /// non-empty bucket as `(lo, hi, count)`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                let (lo, hi) = bucket_bounds(k);
                buckets.push((lo, hi, c));
                count += c;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// The metric's current value for snapshots.
    pub fn read(&self) -> MetricValue {
        MetricValue::Histogram(self.snapshot())
    }
}

// ---------------------------------------------------------------------
// Compiled-out no-op twins: same API, zero size, zero cost.
// ---------------------------------------------------------------------

/// A monotone event counter (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct Counter;

#[cfg(not(feature = "enabled"))]
impl Counter {
    pub const fn new() -> Self {
        Counter
    }
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    #[inline(always)]
    pub fn incr(&self) {}
    pub fn value(&self) -> u64 {
        0
    }
    pub fn reset(&self) {}
    pub fn read(&self) -> MetricValue {
        MetricValue::Counter(0)
    }
}

/// A signed instantaneous value (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct Gauge;

#[cfg(not(feature = "enabled"))]
impl Gauge {
    pub const fn new() -> Self {
        Gauge
    }
    #[inline(always)]
    pub fn set(&self, _v: i64) {}
    #[inline(always)]
    pub fn adjust(&self, _delta: i64) {}
    pub fn value(&self) -> i64 {
        0
    }
    pub fn reset(&self) {}
    pub fn read(&self) -> MetricValue {
        MetricValue::Gauge(0)
    }
}

/// A log₂-bucketed histogram (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
#[derive(Debug)]
pub struct Histogram;

#[cfg(not(feature = "enabled"))]
impl Histogram {
    pub const fn new() -> Self {
        Histogram
    }
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    pub fn reset(&self) {}
    pub fn read(&self) -> MetricValue {
        MetricValue::Histogram(HistogramSnapshot::default())
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}
impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}
impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A histogram's point-in-time state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(lo, hi, count)`, ascending.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// A metric's snapshot value, tagged by kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// The metric's dotted registry name (e.g. `search.cache.hits`).
    pub name: &'static str,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// Declares a metric-group struct, pelikan-style: each field is a
/// [`Counter`], [`Gauge`] or [`Histogram`] with a dotted registry name,
/// and the group gains `const fn new()`, `fn snapshot()` (every metric in
/// declaration order) and `fn reset()`.
///
/// ```
/// dmx_obs::metrics! {
///     /// Metrics of some subsystem.
///     pub struct MyMetrics {
///         /// Things that happened.
///         pub things: Counter = "my.things",
///         /// Current backlog depth.
///         pub depth: Gauge = "my.depth",
///         /// Request sizes.
///         pub sizes: Histogram = "my.sizes",
///     }
/// }
///
/// static M: MyMetrics = MyMetrics::new();
/// M.things.incr();
/// M.sizes.record(100);
/// let snap = M.snapshot();
/// assert_eq!(snap.len(), 3);
/// assert_eq!(snap[0].name, "my.things");
/// ```
#[macro_export]
macro_rules! metrics {
    (
        $(#[$smeta:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $fvis:vis $field:ident : $kind:ident = $mname:literal
            ),+ $(,)?
        }
    ) => {
        $(#[$smeta])*
        #[derive(Debug)]
        $vis struct $name {
            $( $(#[$fmeta])* $fvis $field : $crate::$kind, )+
        }

        impl $name {
            /// A group with every metric zeroed (usable in `static`
            /// position).
            $vis const fn new() -> Self {
                Self { $( $field : $crate::$kind::new(), )+ }
            }

            /// Point-in-time snapshot of every metric, in declaration
            /// order.
            $vis fn snapshot(&self) -> Vec<$crate::MetricSample> {
                vec![ $( $crate::MetricSample {
                    name: $mname,
                    value: self.$field.read(),
                }, )+ ]
            }

            /// Zeroes every metric in the group.
            $vis fn reset(&self) {
                $( self.$field.reset(); )+
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(5);
        g.adjust(-8);
        assert_eq!(g.value(), -3);
        g.reset();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
    }

    #[test]
    fn histogram_snapshot_counts() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1005);
        assert_eq!(snap.max, 1000);
        assert_eq!(
            snap.buckets,
            vec![(0, 0, 1), (1, 1, 2), (2, 3, 1), (512, 1023, 1)]
        );
    }
}
