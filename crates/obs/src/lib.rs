//! `dmx-obs` — zero-perturbation observability for the dmx workspace.
//!
//! Three pieces:
//!
//! 1. **Metric registry** ([`registry`]) — lock-free sharded
//!    [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s,
//!    declared in groups via the [`metrics!`] macro and readable as a
//!    point-in-time snapshot at any moment.
//! 2. **Span timeline** ([`span`](mod@span)) — cheap begin/end
//!    instrumentation recorded into per-thread ring buffers with
//!    monotonic timestamps, gated at runtime by [`set_recording`].
//! 3. **Exporters** ([`export`]) — a Chrome/Perfetto-compatible
//!    `trace.json` writer and a flat metrics JSON snapshot.
//!
//! # Zero perturbation
//!
//! Instrumented code must behave identically whether observability is
//! compiled in, compiled out, or recording. The rules:
//!
//! - obs state never feeds back into search decisions: no RNG draws, no
//!   genome ordering, no charged `SimMetrics` may depend on a metric or
//!   span;
//! - obs data is exported to *separate* artifacts (`--obs-trace`,
//!   `--obs-metrics`), never merged into result exports, because
//!   timing- and interleaving-dependent values (steal counts, nanos)
//!   would break the byte-determinism CI asserts on results;
//! - with the `enabled` feature off every API in this crate still
//!   exists as a zero-sized no-op, so call sites compile unchanged and
//!   an obs-out build is a pure subtraction.
//!
//! The golden tests in `tests/golden_obs.rs` (workspace root) pin the
//! guarantee: `SearchOutcome` exports are byte-identical with recording
//! on vs. off, at 1 and 8 evaluation workers, and CI byte-compares a
//! fully compiled-out CLI build against the default one.

pub mod export;
pub mod registry;
pub mod span;

pub use export::{metrics_to_json, timelines_to_trace_json};
pub use registry::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricSample,
    MetricValue, HIST_BUCKETS,
};
pub use span::{
    clear_timelines, drain_timelines, instant, span, SpanEvent, SpanGuard, SpanKind, ThreadEvents,
};

/// Whether the observability layer is compiled in (`enabled` feature).
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
static RECORDING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Switches span recording on or off at runtime. Metrics (counters,
/// gauges, histograms) are always live when compiled in — only the
/// timeline rings are gated, since they are the part with a per-event
/// allocation-free-but-nonzero cost.
#[cfg(feature = "enabled")]
pub fn set_recording(on: bool) {
    RECORDING.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether span recording is currently on.
#[cfg(feature = "enabled")]
#[inline]
pub fn recording() -> bool {
    RECORDING.load(std::sync::atomic::Ordering::Relaxed)
}

/// Switches span recording on or off (compiled-out no-op).
#[cfg(not(feature = "enabled"))]
pub fn set_recording(_on: bool) {}

/// Whether span recording is currently on (compiled-out: never).
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn recording() -> bool {
    false
}

/// Span names used across the workspace, so exporters and tests can
/// refer to one canonical taxonomy. Dotted `layer.operation` style.
pub mod names {
    /// One `Evaluator::eval_batch` call (arg: genomes requested).
    pub const EVAL_BATCH: &str = "eval.batch";
    /// One worker job inside a batch (arg: genomes in the job).
    pub const EVAL_JOB: &str = "eval.job";
    /// One genetic-search generation (arg: generation index).
    pub const GA_GENERATION: &str = "search.generation";
    /// One island lockstep step (arg: generation index).
    pub const ISLAND_STEP: &str = "island.step";
    /// One migration barrier (arg: migrants installed).
    pub const MIGRATION: &str = "island.migration";
    /// One single-genome kernel replay pass (arg: trace events).
    pub const KERNEL_REPLAY: &str = "kernel.replay";
    /// One SoA batch replay pass (arg: lanes).
    pub const KERNEL_BATCH: &str = "kernel.batch";
    /// One shared-arena lease lifetime (arg: slot index, or
    /// `u64::MAX` for an overflow arena).
    pub const ARENA_LEASE: &str = "arena.lease";
    /// Cache hit marker (instant).
    pub const CACHE_HIT: &str = "cache.hit";
    /// Cache miss marker (instant).
    pub const CACHE_MISS: &str = "cache.miss";
    /// One multi-fidelity screening rung over a batch (arg: candidates
    /// entering the rung).
    pub const EVAL_SCREEN: &str = "eval.screen";
}

metrics! {
    /// The workspace-wide metric catalog. One static instance lives in
    /// this crate ([`metrics()`]); instrumented layers update it
    /// directly and exporters snapshot it.
    pub struct DmxMetrics {
        /// Genetic-search generations completed.
        pub search_generations: Counter = "search.generations",
        /// Evaluation-cache hits (lookups + batch-planner accounting).
        pub cache_hits: Counter = "search.cache.hits",
        /// Evaluation-cache misses.
        pub cache_misses: Counter = "search.cache.misses",
        /// `eval_batch` calls.
        pub eval_batches: Counter = "eval.batches",
        /// Genomes simulated fresh (cache misses that ran the kernel).
        pub eval_fresh: Counter = "eval.fresh",
        /// Worker jobs executed across all batches.
        pub eval_jobs: Counter = "eval.jobs",
        /// Work items taken from another worker's chunk.
        pub queue_steals: Counter = "queue.steals",
        /// Island migration barriers crossed.
        pub migrations: Counter = "island.migrations",
        /// Migrants installed into destination islands.
        pub migrants_installed: Counter = "island.migrants",
        /// Single-genome kernel replay passes.
        pub kernel_replays: Counter = "kernel.replays",
        /// SoA batch replay passes.
        pub kernel_batches: Counter = "kernel.batches",
        /// Trace events replayed (single passes + batch passes × lanes).
        pub kernel_events: Counter = "kernel.events",
        /// Shared-arena checkouts served from the free stack.
        pub arena_checkouts: Counter = "arena.checkouts",
        /// Checkouts that overflowed to a fresh arena.
        pub arena_overflows: Counter = "arena.overflows",
        /// Candidates that entered a multi-fidelity screening rung.
        pub fidelity_screened: Counter = "fidelity.screened",
        /// Candidates promoted past a screening rung.
        pub fidelity_promoted: Counter = "fidelity.promoted",
        /// Candidates ranked by a surrogate instead of a prefix replay.
        pub fidelity_surrogate_hits: Counter = "fidelity.surrogate_hits",
        /// Current generation of the most recent search.
        pub generation: Gauge = "search.generation.current",
        /// Total generations the current search will run.
        pub generations_total: Gauge = "search.generation.total",
        /// Pareto-front size after the latest generation.
        pub front_size: Gauge = "search.front.size",
        /// Hypervolume proxy (‰ of the reference box) after the latest
        /// generation.
        pub hv_permille: Gauge = "search.front.hv_permille",
        /// Fresh genomes per `eval_batch` call.
        pub batch_fresh: Histogram = "eval.batch.fresh",
        /// Lanes per SoA batch replay pass.
        pub batch_lanes: Histogram = "kernel.batch.lanes",
        /// Prefix lengths (trace events) replayed by screening rungs.
        pub fidelity_prefix_events: Histogram = "fidelity.prefix.events",
    }
}

#[cfg(feature = "enabled")]
static METRICS: DmxMetrics = DmxMetrics::new();

/// The workspace-wide metric catalog.
#[cfg(feature = "enabled")]
pub fn metrics() -> &'static DmxMetrics {
    &METRICS
}

/// The workspace-wide metric catalog (compiled-out: zero-sized no-ops).
#[cfg(not(feature = "enabled"))]
pub fn metrics() -> &'static DmxMetrics {
    static METRICS: DmxMetrics = DmxMetrics::new();
    &METRICS
}

/// Zeroes every catalog metric and clears every span ring. Intended
/// for tests and benches that measure from a clean slate.
pub fn reset() {
    metrics().reset();
    clear_timelines();
}

/// Snapshots the catalog as flat metrics JSON (see
/// [`metrics_to_json`]).
pub fn metrics_json() -> String {
    metrics_to_json(&metrics().snapshot())
}

/// Snapshots every thread timeline as a Perfetto trace-event document
/// (see [`timelines_to_trace_json`]).
pub fn perfetto_json() -> String {
    timelines_to_trace_json(&drain_timelines())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_snapshot_has_every_metric() {
        let snap = metrics().snapshot();
        assert_eq!(snap.len(), 24);
        assert_eq!(snap[0].name, "search.generations");
        assert!(snap.iter().any(|s| s.name == "kernel.batch.lanes"));
        assert!(snap.iter().any(|s| s.name == "fidelity.prefix.events"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn catalog_counters_accumulate() {
        // Other tests share the static catalog, so assert on deltas of
        // a metric nothing else in this crate touches.
        let before = metrics().migrants_installed.value();
        metrics().migrants_installed.add(5);
        assert_eq!(metrics().migrants_installed.value() - before, 5);
    }

    #[test]
    fn compiled_matches_feature() {
        assert_eq!(compiled(), cfg!(feature = "enabled"));
    }
}
