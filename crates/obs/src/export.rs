//! Exporters: Chrome/Perfetto trace JSON and a flat metrics snapshot.
//!
//! JSON is hand-rolled (the workspace has no serde) with the same
//! append-into-`String` style as `dmx-core`'s exporters. Span names are
//! `&'static str` from [`crate::names`] and contain no characters that
//! need escaping, but the writer escapes anyway so a future dynamic
//! name can't corrupt the document.

use crate::registry::{MetricSample, MetricValue};
use crate::span::{SpanEvent, SpanKind, ThreadEvents};

/// Serialises metric samples as one flat JSON object:
/// counters/gauges as numbers, histograms as
/// `{"count", "sum", "max", "buckets": [{"lo", "hi", "count"}, …]}`
/// (non-empty buckets only).
pub fn metrics_to_json(samples: &[MetricSample]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  \"");
        push_escaped(&mut out, s.name);
        out.push_str("\": ");
        match &s.value {
            MetricValue::Counter(v) => out.push_str(&v.to_string()),
            MetricValue::Gauge(v) => out.push_str(&v.to_string()),
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                    h.count, h.sum, h.max
                ));
                for (j, (lo, hi, c)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {c}}}"));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// Serialises per-thread timelines as a Chrome/Perfetto trace-event
/// document (`chrome://tracing` and <https://ui.perfetto.dev> both load
/// it): matched begin/end pairs become `"X"` complete events with
/// microsecond `ts`/`dur`, instants become `"i"` events, and each
/// thread gets a `thread_name` metadata record. Unmatched begins (a
/// worker mid-span at export time) are closed at the trace's end.
pub fn timelines_to_trace_json(timelines: &[ThreadEvents]) -> String {
    let pid = 1u64;
    let end_ns = timelines
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.t_ns))
        .max()
        .unwrap_or(0);

    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str("  ");
        out.push_str(&line);
    };

    push_event(
        format!(
            "{{\"ph\": \"M\", \"pid\": {pid}, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"dmx\"}}}}"
        ),
        &mut first,
    );
    for t in timelines {
        let label = if t.tid == 0 { "main" } else { "worker" };
        push_event(
            format!(
                "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": \"{label}-{}\"}}}}",
                t.tid, t.tid
            ),
            &mut first,
        );
    }

    for t in timelines {
        // Match begin/end pairs per-thread with a stack; ends always
        // close the innermost open begin because guards are RAII.
        let mut stack: Vec<&SpanEvent> = Vec::new();
        for e in &t.events {
            match e.kind {
                SpanKind::Begin => stack.push(e),
                SpanKind::End => {
                    if let Some(b) = stack.pop() {
                        push_event(complete_event(pid, t.tid, b, e.t_ns), &mut first);
                    }
                }
                SpanKind::Instant => {
                    let mut line = format!(
                        "{{\"ph\": \"i\", \"pid\": {pid}, \"tid\": {}, \"ts\": {}, \
                         \"s\": \"t\", \"name\": \"",
                        t.tid,
                        e.t_ns / 1_000
                    );
                    push_escaped(&mut line, e.name);
                    line.push_str(&format!("\", \"args\": {{\"arg\": {}}}}}", e.arg));
                    push_event(line, &mut first);
                }
            }
        }
        // A worker mid-span at export time: close at the trace's end so
        // the viewer still shows the slice.
        while let Some(b) = stack.pop() {
            push_event(
                complete_event(pid, t.tid, b, end_ns.max(b.t_ns)),
                &mut first,
            );
        }
    }

    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

fn complete_event(pid: u64, tid: u64, begin: &SpanEvent, end_ns: u64) -> String {
    let ts_us = begin.t_ns / 1_000;
    let dur_us = end_ns.saturating_sub(begin.t_ns) / 1_000;
    let mut line = format!(
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts_us}, \
         \"dur\": {dur_us}, \"name\": \""
    );
    push_escaped(&mut line, begin.name);
    line.push_str(&format!("\", \"args\": {{\"arg\": {}}}}}", begin.arg));
    line
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSnapshot;

    #[test]
    fn metrics_json_shape() {
        let samples = vec![
            MetricSample {
                name: "a.count",
                value: MetricValue::Counter(3),
            },
            MetricSample {
                name: "a.level",
                value: MetricValue::Gauge(-2),
            },
            MetricSample {
                name: "a.sizes",
                value: MetricValue::Histogram(HistogramSnapshot {
                    count: 2,
                    sum: 5,
                    max: 4,
                    buckets: vec![(1, 1, 1), (4, 7, 1)],
                }),
            },
        ];
        let json = metrics_to_json(&samples);
        assert!(json.contains("\"a.count\": 3"));
        assert!(json.contains("\"a.level\": -2"));
        assert!(json.contains("\"count\": 2, \"sum\": 5, \"max\": 4"));
        assert!(json.contains("{\"lo\": 4, \"hi\": 7, \"count\": 1}"));
    }

    #[test]
    fn trace_json_matches_pairs() {
        let timelines = vec![ThreadEvents {
            tid: 0,
            dropped: 0,
            events: vec![
                SpanEvent {
                    name: "outer",
                    kind: SpanKind::Begin,
                    t_ns: 1_000,
                    arg: 1,
                },
                SpanEvent {
                    name: "inner",
                    kind: SpanKind::Begin,
                    t_ns: 2_000,
                    arg: 2,
                },
                SpanEvent {
                    name: "inner",
                    kind: SpanKind::End,
                    t_ns: 5_000,
                    arg: 2,
                },
                SpanEvent {
                    name: "mark",
                    kind: SpanKind::Instant,
                    t_ns: 6_000,
                    arg: 9,
                },
                SpanEvent {
                    name: "outer",
                    kind: SpanKind::End,
                    t_ns: 9_000,
                    arg: 1,
                },
            ],
        }];
        let json = timelines_to_trace_json(&timelines);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"inner\""));
        // inner: ts 2µs dur 3µs; outer: ts 1µs dur 8µs.
        assert!(json.contains("\"ts\": 2, \"dur\": 3"));
        assert!(json.contains("\"ts\": 1, \"dur\": 8"));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"displayTimeUnit\": \"ms\""));
    }

    #[test]
    fn trace_json_closes_unmatched_begins() {
        let timelines = vec![ThreadEvents {
            tid: 3,
            dropped: 0,
            events: vec![SpanEvent {
                name: "open",
                kind: SpanKind::Begin,
                t_ns: 4_000,
                arg: 0,
            }],
        }];
        let json = timelines_to_trace_json(&timelines);
        assert!(json.contains("\"name\": \"open\""));
        assert!(json.contains("\"dur\": 0"));
    }
}
