//! `dmx` — command-line front-end for the exploration tool.
//!
//! Subcommands mirror the paper's tool flow (Figure 1):
//!
//! ```text
//! dmx gen-trace <easyport|vtc|synthetic|server> --out FILE [--seed N] [--paper]
//! dmx profile   --trace FILE
//! dmx explore   --trace FILE --out-records FILE [--csv FILE] [--gnuplot FILE]
//!               [--json FILE] [--objectives footprint,accesses]
//!               [--space odometer|grammar]
//!               [--strategy exhaustive|sample|genetic|hillclimb|island]
//!               [--generations N] [--population N] [--restarts N]
//!               [--islands N] [--migration ring|full|star] [--migrate-every K]
//!               [--sample-n N] [--seed N]
//!               [--obs-trace FILE] [--obs-metrics FILE] [--progress]
//! dmx explore   --suite NAME [--aggregate worst|mean|weighted] [--json FILE]
//!               [--out-records FILE] [--objectives ...] [--space ...]
//!               [--strategy ...]
//!               [--obs-trace FILE] [--obs-metrics FILE] [--progress]
//! dmx scenarios list [SUITE]
//! dmx pareto    --records FILE [--objectives footprint,accesses]
//! dmx report    --records FILE
//! ```
//!
//! `explore` defaults to the exhaustive sweep; `--strategy
//! genetic|hillclimb|sample` switches to guided search (see
//! `dmx_core::search`), which recovers the Pareto front at a fraction of
//! the simulations on large spaces, and `--strategy island` runs the
//! island-model parallel search (N independent islands exchanging elites
//! over `--migration ring|full|star` every `--migrate-every`
//! generations, merged deterministically). `--space grammar` searches
//! the grammar-derivation space (codon vectors deriving allocator pool
//! trees from a small BNF-style grammar — see `dmx_core::space`) instead
//! of the default odometer index space. `--suite` switches to *robust*
//! exploration: every configuration is evaluated across a whole scenario
//! suite (see `dmx_core::scenario`) and the chosen strategy optimizes
//! worst-case / mean / weighted aggregated objectives. The threaded
//! `server-mix` suite pairs naturally with the contention-model
//! objectives `tail_latency` and `contention_stalls` (both stay 0 on
//! single-threaded traces). All modes are deterministic in `--seed`.
//!
//! Observability (see `dmx_obs`): `--obs-trace FILE` records a span
//! timeline and writes a Chrome/Perfetto-compatible `trace.json`,
//! `--obs-metrics FILE` snapshots the metric catalog as flat JSON, and
//! `--progress` prints a live status line (generation, front size,
//! hypervolume proxy, cache hit rate, events/sec) to stderr during long
//! runs. None of these perturb results — obs data goes to separate
//! files, never into the byte-deterministic result exports.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::process::ExitCode;

use std::sync::Arc;

use dmx_core::export::{gnuplot_script, robust_to_json, search_to_json, to_csv};
use dmx_core::{
    Aggregate, ExhaustiveSearch, Explorer, FidelityPlan, FidelityStats, GeneticSearch, GenomeSpace,
    GrammarSpace, HillClimbSearch, IslandSearch, Migration, MultiScenarioEvaluator, Objective,
    ParamSpace, ScenarioSuite, SearchStrategy, StudySummary, SubsampleSearch, SurrogateKind,
};
use dmx_memhier::presets;
use dmx_profile::{parse_records, records_to_string, ProfileRecord};
use dmx_trace::gen::{EasyportConfig, ServerMixConfig, SyntheticConfig, TraceGenerator, VtcConfig};
use dmx_trace::{textfmt, Trace, TraceStats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dmx: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    };
    // Downstream tools (`head`, `less`) may close stdout early; flush and
    // swallow the broken pipe rather than panicking mid-report.
    let _ = std::io::stdout().flush();
    code
}

/// `println!` that ignores a closed stdout (SIGPIPE-friendly).
macro_rules! outln {
    ($($arg:tt)*) => {
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            return Ok(());
        }
    };
}

const USAGE: &str = "usage:
  dmx gen-trace <easyport|vtc|synthetic|server> --out FILE [--seed N] [--paper]
  dmx profile   --trace FILE
  dmx explore   --trace FILE --out-records FILE [--csv FILE] [--gnuplot FILE]
                [--json FILE] [--objectives footprint,accesses]
                [--space odometer|grammar]
                [--strategy exhaustive|sample|genetic|hillclimb|island]
                [--generations N] [--population N] [--restarts N]
                [--islands N] [--migration ring|full|star] [--migrate-every K]
                [--migrants M] [--sample-n N] [--seed N] [--sim-stats]
                [--fidelity off|halving] [--rungs 0.2,0.5,1.0] [--keep 0.4]
                [--surrogate knn|off] [--knn-k K]
                [--obs-trace FILE] [--obs-metrics FILE] [--progress]
  dmx explore   --suite NAME [--aggregate worst|mean|weighted] [--json FILE]
                [--out-records FILE] [--objectives ...] [--space ...]
                [--strategy ...] [--seed N] [--sim-stats]
                [--fidelity off|halving] [--rungs 0.2,0.5,1.0] [--keep 0.4]
                [--surrogate knn|off] [--knn-k K]
                [--obs-trace FILE] [--obs-metrics FILE] [--progress]
  dmx scenarios list [SUITE]
  dmx pareto    --records FILE [--objectives footprint,accesses,energy,cycles]
  dmx report    --records FILE
  dmx study     <easyport|vtc> [--seed N] [--paper]";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();
    match cmd.as_str() {
        "gen-trace" => gen_trace(&rest),
        "profile" => profile(&rest),
        "explore" => explore(&rest),
        "scenarios" => scenarios(&rest),
        "pareto" => pareto(&rest),
        "report" => report(&rest),
        "study" => study(&rest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// Fetches the value following a `--flag`.
fn opt<'a>(rest: &'a [&String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(rest: &[&String], flag: &str) -> bool {
    rest.iter().any(|a| a.as_str() == flag)
}

fn load_trace(rest: &[&String]) -> Result<Trace, String> {
    let path = opt(rest, "--trace").ok_or("missing --trace FILE")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    textfmt::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn load_records(rest: &[&String]) -> Result<Vec<ProfileRecord>, String> {
    let path = opt(rest, "--records").ok_or("missing --records FILE")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_records(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn gen_trace(rest: &[&String]) -> Result<(), String> {
    let kind = rest.first().ok_or("missing generator kind")?;
    let out = opt(rest, "--out").ok_or("missing --out FILE")?;
    let seed: u64 = opt(rest, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let paper = has_flag(rest, "--paper");
    let trace = match kind.as_str() {
        "easyport" => {
            let cfg = if paper {
                EasyportConfig::paper()
            } else {
                EasyportConfig::small()
            };
            cfg.generate(seed)
        }
        "vtc" => {
            let cfg = if paper {
                VtcConfig::paper()
            } else {
                VtcConfig::small()
            };
            cfg.generate(seed)
        }
        "synthetic" => {
            SyntheticConfig::uniform_churn(if paper { 50_000 } else { 5_000 }).generate(seed)
        }
        "server" => {
            let cfg = if paper {
                ServerMixConfig::paper()
            } else {
                ServerMixConfig::small()
            };
            cfg.generate(seed)
        }
        other => return Err(format!("unknown generator `{other}`")),
    };
    fs::write(out, textfmt::to_string(&trace)).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {} events to {out}", trace.len());
    Ok(())
}

fn profile(rest: &[&String]) -> Result<(), String> {
    let trace = load_trace(rest)?;
    let stats = TraceStats::compute(&trace);
    outln!("trace `{}`", trace.name());
    outln!("  events          : {}", stats.events);
    outln!("  allocs / frees  : {} / {}", stats.allocs, stats.frees);
    outln!(
        "  peak live       : {} B in {} blocks",
        stats.peak_live_bytes,
        stats.peak_live_blocks
    );
    outln!(
        "  sizes           : {}..{} B",
        stats.min_size,
        stats.max_size
    );
    outln!(
        "  mean lifetime   : {:.1} events",
        stats.mean_lifetime_events
    );
    outln!(
        "  app accesses    : {} r / {} w",
        stats.app_reads,
        stats.app_writes
    );
    outln!("  compute         : {} cycles", stats.tick_cycles);
    outln!("  hot sizes (top 8 by allocation count):");
    for s in stats.per_size.iter().take(8) {
        outln!(
            "    {:>7} B  x{:<8} peak live {:<6} accesses {}",
            s.size,
            s.allocs,
            s.peak_live,
            s.accesses
        );
    }
    Ok(())
}

/// Parses an integer flag with a default.
fn num_opt(rest: &[&String], flag: &str, default: usize) -> Result<usize, String> {
    match opt(rest, flag) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad {flag}")),
    }
}

/// Builds the guided-search strategy from the common flags.
/// `space_len` sizes the default subsample.
fn build_strategy(
    rest: &[&String],
    seed: u64,
    space_len: usize,
) -> Result<Box<dyn SearchStrategy>, String> {
    let strategy_name = opt(rest, "--strategy").unwrap_or("exhaustive");
    Ok(match strategy_name {
        "exhaustive" => Box::new(ExhaustiveSearch),
        "sample" => Box::new(SubsampleSearch {
            n: num_opt(rest, "--sample-n", space_len.div_ceil(4))?,
            seed,
        }),
        "genetic" => Box::new(GeneticSearch {
            population: num_opt(rest, "--population", 32)?,
            generations: num_opt(rest, "--generations", 16)?,
            seed,
            ..GeneticSearch::default()
        }),
        "hillclimb" => Box::new(HillClimbSearch {
            restarts: num_opt(rest, "--restarts", 8)?,
            seed,
            ..HillClimbSearch::default()
        }),
        "island" => {
            let islands = num_opt(rest, "--islands", 4)?;
            if islands == 0 {
                return Err("--islands must be at least 1".to_owned());
            }
            let migration: Migration = opt(rest, "--migration").unwrap_or("ring").parse()?;
            let migrate_every = num_opt(rest, "--migrate-every", 4)?;
            if migrate_every == 0 {
                return Err("--migrate-every must be at least 1".to_owned());
            }
            Box::new(IslandSearch {
                islands,
                migration,
                migrate_every,
                migrants: num_opt(rest, "--migrants", 2)?,
                population: num_opt(rest, "--population", 16)?,
                generations: num_opt(rest, "--generations", 16)?,
                seed,
                ..IslandSearch::default()
            })
        }
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

/// Renders the per-island statistics lines for island-model runs.
fn render_island_stats(islands: &[dmx_core::IslandStats]) -> String {
    let mut out = String::new();
    for s in islands {
        out.push_str(&format!(
            "island {}: {:<9} {} genomes, {} front points, sent {} / installed {} migrants, last improved gen {}/{}\n",
            s.island,
            s.kind,
            s.genomes,
            s.front.len(),
            s.migrants_sent,
            s.migrants_received,
            s.last_improved_generation,
            s.generations,
        ));
    }
    out
}

/// The `--objectives` list (default: the paper's Figure-1 pair).
fn objectives_opt(rest: &[&String]) -> Result<Vec<Objective>, String> {
    match opt(rest, "--objectives") {
        None => Ok(Objective::FIG1.to_vec()),
        Some(spec) => parse_objectives(spec),
    }
}

/// Gnuplot wants exactly two axes: the first two requested objectives, or
/// the Figure-1 pair when fewer were given.
fn objective_pair(objectives: &[Objective]) -> [Objective; 2] {
    if objectives.len() >= 2 {
        [objectives[0], objectives[1]]
    } else {
        Objective::FIG1
    }
}

/// Everything the observability flags ask for around one explore run:
/// span recording switched on up front when a trace is wanted, a live
/// `--progress` reporter thread during the search, and the Perfetto
/// trace / flat metrics snapshots written afterwards. Observability
/// artifacts are deliberately *separate files* from the result exports:
/// obs values are timing-dependent (steal counts, nanoseconds), and the
/// result exports are byte-compared across runs and thread counts in CI.
struct ObsSession {
    trace_path: Option<String>,
    metrics_path: Option<String>,
    progress: Option<ProgressReporter>,
}

impl ObsSession {
    /// Parses the obs flags and starts recording/reporting as requested.
    fn start(rest: &[&String]) -> Self {
        let trace_path = opt(rest, "--obs-trace").map(str::to_owned);
        let metrics_path = opt(rest, "--obs-metrics").map(str::to_owned);
        let progress = has_flag(rest, "--progress");
        if (trace_path.is_some() || metrics_path.is_some() || progress) && !dmx_obs::compiled() {
            eprintln!(
                "note: this build has observability compiled out; \
                 --obs-trace/--obs-metrics/--progress will report nothing"
            );
        }
        if trace_path.is_some() {
            dmx_obs::set_recording(true);
        }
        ObsSession {
            trace_path,
            metrics_path,
            progress: progress.then(ProgressReporter::start),
        }
    }

    /// Stops the reporter and writes the requested obs artifacts.
    fn finish(self) -> Result<(), String> {
        if let Some(reporter) = self.progress {
            reporter.finish();
        }
        if let Some(path) = self.trace_path {
            dmx_obs::set_recording(false);
            fs::write(&path, dmx_obs::perfetto_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote Perfetto trace to {path} (load at https://ui.perfetto.dev)");
        }
        if let Some(path) = self.metrics_path {
            fs::write(&path, dmx_obs::metrics_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote obs metrics snapshot to {path}");
        }
        Ok(())
    }
}

/// The `--progress` live reporter: a background thread sampling the obs
/// metric catalog twice a second and printing one status line per tick
/// to stderr — per-generation front size, hypervolume proxy, cache hit
/// rate, and replay throughput. Reads gauges the search layer updates;
/// never feeds anything back, so it cannot perturb the search.
struct ProgressReporter {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressReporter {
    fn start() -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let stop_seen = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut last_events = dmx_obs::metrics().kernel_events.value();
            let mut last_tick = std::time::Instant::now();
            while !stop_seen.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(500));
                let m = dmx_obs::metrics();
                let events = m.kernel_events.value();
                let now = std::time::Instant::now();
                let rate =
                    (events - last_events) as f64 / now.duration_since(last_tick).as_secs_f64();
                last_events = events;
                last_tick = now;
                let hits = m.cache_hits.value();
                let lookups = hits + m.cache_misses.value();
                let hit_pct = if lookups == 0 {
                    0.0
                } else {
                    hits as f64 * 100.0 / lookups as f64
                };
                // Full simulations avoided so far by multi-fidelity
                // screening (zero, and omitted, when fidelity is off).
                let screened = m.fidelity_screened.value();
                let avoided = screened.saturating_sub(m.fidelity_promoted.value());
                let fidelity = if screened == 0 {
                    String::new()
                } else {
                    format!(", {avoided} full sims avoided")
                };
                eprintln!(
                    "progress: gen {}/{}, front {}, hv {}‰, cache {:.1}% hit, {:.2}M events/sec{}",
                    m.generation.value(),
                    m.generations_total.value(),
                    m.front_size.value(),
                    m.hv_permille.value(),
                    hit_pct,
                    rate / 1e6,
                    fidelity,
                );
            }
        });
        ProgressReporter { stop, handle }
    }

    fn finish(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Resolves `--space odometer|grammar` against the derived odometer
/// space: `odometer` searches the paper's 8-axis index space itself,
/// `grammar` the grammar-derivation space covering it (codon vectors
/// deriving allocator pool trees; see `dmx_core::space`).
fn build_space(rest: &[&String], odometer: ParamSpace) -> Result<Arc<dyn GenomeSpace>, String> {
    match opt(rest, "--space").unwrap_or("odometer") {
        "odometer" => Ok(Arc::new(odometer)),
        "grammar" => Ok(Arc::new(GrammarSpace::covering(&odometer))),
        other => Err(format!(
            "unknown space `{other}` (expected odometer or grammar)"
        )),
    }
}

/// Builds the multi-fidelity plan from `--fidelity off|halving` plus the
/// optional `--rungs`/`--keep`/`--surrogate`/`--knn-k` overrides.
/// `None` (the default) means full-fidelity evaluation.
fn build_fidelity(rest: &[&String]) -> Result<Option<FidelityPlan>, String> {
    let mut plan = match opt(rest, "--fidelity").unwrap_or("off") {
        "off" => return Ok(None),
        "halving" => FidelityPlan::halving(),
        other => {
            return Err(format!(
                "unknown fidelity mode `{other}` (expected off or halving)"
            ))
        }
    };
    if let Some(list) = opt(rest, "--rungs") {
        plan.rungs = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("bad rung `{s}`"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(keep) = opt(rest, "--keep") {
        plan.keep = keep.parse().map_err(|_| "bad --keep")?;
    }
    plan.surrogate = match opt(rest, "--surrogate").unwrap_or("knn") {
        "off" => SurrogateKind::Off,
        "knn" => SurrogateKind::Knn {
            k: num_opt(rest, "--knn-k", 8)?,
        },
        other => return Err(format!("unknown surrogate `{other}` (expected knn or off)")),
    };
    plan.validate()?;
    Ok(Some(plan))
}

/// One stderr summary line for a multi-fidelity run: what each rung
/// screened and how many full simulations the schedule avoided.
fn render_fidelity(stats: &FidelityStats) -> String {
    let mut line = String::from("fidelity:");
    for (fraction, rung) in stats.fractions.iter().zip(&stats.rungs) {
        let _ = write!(
            line,
            " rung {:.0}% {} -> {},",
            fraction * 100.0,
            rung.screened,
            rung.promoted
        );
    }
    let avoided = stats
        .rungs
        .first()
        .map(|r| r.screened.saturating_sub(stats.full_simulations))
        .unwrap_or(0);
    let _ = write!(
        line,
        " {} surrogate hits, {} full sims ({} avoided)",
        stats.surrogate_hits, stats.full_simulations, avoided
    );
    line
}

/// Looks a built-in suite up by name, listing the registry on failure.
fn lookup_suite(name: &str) -> Result<ScenarioSuite, String> {
    ScenarioSuite::builtin(name).ok_or_else(|| {
        format!(
            "unknown suite `{name}` (built-ins: {})",
            dmx_core::scenario::suite::BUILTIN_SUITES.join(", ")
        )
    })
}

fn explore(rest: &[&String]) -> Result<(), String> {
    if let Some(suite_name) = opt(rest, "--suite") {
        return explore_suite(rest, suite_name);
    }
    let trace = load_trace(rest)?;
    let out_records = opt(rest, "--out-records").ok_or("missing --out-records FILE")?;
    let hier = presets::sp64k_dram4m();
    let stats = TraceStats::compute(&trace);
    let space = build_space(rest, ParamSpace::suggest(&stats, &hier))?;
    let objectives = objectives_opt(rest)?;

    let seed: u64 = opt(rest, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let strategy = build_strategy(rest, seed, space.len())?;
    let fidelity = build_fidelity(rest)?;

    eprintln!(
        "exploring {} configurations of the `{}` space over trace `{}` ({} events) with strategy `{}`...",
        space.len(),
        space.name(),
        trace.name(),
        trace.len(),
        strategy.name(),
    );
    let obs = ObsSession::start(rest);
    let mut explorer = Explorer::new(&hier);
    if let Some(plan) = &fidelity {
        explorer = explorer.with_fidelity(plan);
    }
    let outcome = explorer.search(strategy.as_ref(), &*space, &trace, &objectives);
    obs.finish()?;
    eprintln!(
        "strategy `{}`: {} simulations for a space of {} ({} cache hits), {} Pareto points",
        outcome.strategy,
        outcome.evaluations,
        space.len(),
        outcome.cache_hits,
        outcome.front.len(),
    );
    if let Some(stats) = &outcome.fidelity {
        eprintln!("{}", render_fidelity(stats));
    }
    if !outcome.islands.is_empty() {
        eprint!("{}", render_island_stats(&outcome.islands));
    }
    if has_flag(rest, "--sim-stats") {
        outln!("{}", outcome.sim_stats.render(outcome.cache_hits));
    }
    if let Some(path) = opt(rest, "--json") {
        let json = search_to_json(&outcome, &objectives);
        fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote search outcome JSON to {path}");
    }
    let exploration = outcome.exploration;
    let records = exploration.to_records();
    fs::write(out_records, records_to_string(&records))
        .map_err(|e| format!("writing {out_records}: {e}"))?;
    eprintln!("wrote {} records to {out_records}", records.len());

    if let Some(path) = opt(rest, "--csv") {
        fs::write(path, to_csv(&exploration)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote CSV to {path}");
    }
    if let Some(path) = opt(rest, "--gnuplot") {
        let pair = objective_pair(&objectives);
        let front = exploration.pareto(&pair);
        let script = gnuplot_script(&exploration, &front, pair, trace.name());
        fs::write(path, script).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote Gnuplot script to {path}");
    }
    let _ = write!(
        std::io::stdout(),
        "{}",
        StudySummary::compute(&exploration).render()
    );
    Ok(())
}

/// Robust exploration across a scenario suite (`dmx explore --suite`).
fn explore_suite(rest: &[&String], suite_name: &str) -> Result<(), String> {
    let suite = lookup_suite(suite_name)?;
    let aggregate: Aggregate = opt(rest, "--aggregate").unwrap_or("worst").parse()?;
    let objectives = objectives_opt(rest)?;
    let seed: u64 = opt(rest, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;

    let mut evaluator = MultiScenarioEvaluator::new(&suite)
        .with_aggregate(aggregate)
        .with_objectives(&objectives)
        .with_seed(seed);
    if let Some(plan) = build_fidelity(rest)? {
        evaluator = evaluator.with_fidelity(plan);
    }
    // The shared space sizes strategy defaults; the evaluator memoizes
    // the materialization, so this costs one trace-generation pass total,
    // and handing the space back avoids deriving it a second time in run.
    let space = build_space(rest, evaluator.odometer_space())?;
    let space_len = space.len();
    let strategy = build_strategy(rest, seed, space_len)?;

    eprintln!(
        "robust exploration: suite `{}` ({} scenarios), {} configurations of the `{}` space, strategy `{}`, aggregate `{}`...",
        suite.name,
        suite.scenarios.len(),
        space_len,
        space.name(),
        strategy.name(),
        aggregate,
    );
    let obs = ObsSession::start(rest);
    let robust = evaluator.with_space_arc(space).run(strategy.as_ref());
    obs.finish()?;
    eprintln!(
        "strategy `{}`: {} configurations evaluated ({} simulations, {} cache hits), robust front {}",
        robust.outcome.strategy,
        robust.outcome.evaluations,
        robust.outcome.simulations,
        robust.outcome.cache_hits,
        robust.outcome.front.len(),
    );
    if let Some(stats) = &robust.outcome.fidelity {
        eprintln!("{}", render_fidelity(stats));
    }
    if !robust.outcome.islands.is_empty() {
        eprint!("{}", render_island_stats(&robust.outcome.islands));
    }
    if has_flag(rest, "--sim-stats") {
        outln!(
            "{}",
            robust.outcome.sim_stats.render(robust.outcome.cache_hits)
        );
    }

    if let Some(path) = opt(rest, "--out-records") {
        let records = robust.outcome.exploration.to_records();
        fs::write(path, records_to_string(&records)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} robust records to {path}", records.len());
    }
    if let Some(path) = opt(rest, "--csv") {
        fs::write(path, to_csv(&robust.outcome.exploration))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote robust CSV to {path}");
    }
    if let Some(path) = opt(rest, "--gnuplot") {
        let pair = objective_pair(&objectives);
        let front = robust.outcome.exploration.pareto(&pair);
        let title = format!("robust[{}] {}", robust.aggregate, robust.suite);
        let script = gnuplot_script(&robust.outcome.exploration, &front, pair, &title);
        fs::write(path, script).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote robust Gnuplot script to {path}");
    }
    if let Some(path) = opt(rest, "--json") {
        fs::write(path, robust_to_json(&robust)).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote robust + per-scenario fronts JSON to {path}");
    }
    let _ = write!(std::io::stdout(), "{}", robust.render());
    Ok(())
}

/// `dmx scenarios list [SUITE]` — the built-in suite registry.
fn scenarios(rest: &[&String]) -> Result<(), String> {
    let action = rest.first().map(|s| s.as_str()).unwrap_or("list");
    if action != "list" {
        return Err(format!("unknown scenarios action `{action}` (try `list`)"));
    }
    let filter = rest.get(1).map(|s| s.as_str());
    let suites: Vec<ScenarioSuite> = match filter {
        None => ScenarioSuite::builtins(),
        Some(name) => vec![lookup_suite(name)?],
    };
    for suite in &suites {
        outln!("suite `{}` — {}", suite.name, suite.description);
        for s in &suite.scenarios {
            outln!(
                "  {:<18} workload={:<11} platform={:<22} weight={:<4} constraints={}",
                s.name,
                s.workload.kind(),
                s.platform.name(),
                s.weight,
                s.constraints.constraints().len()
            );
        }
        outln!();
    }
    Ok(())
}

fn parse_objectives(spec: &str) -> Result<Vec<Objective>, String> {
    // `split(',')` yields at least one item, so an empty spec fails in
    // `Objective::from_str` — the result is always non-empty.
    spec.split(',').map(str::parse).collect()
}

/// Pulls one objective value out of a stored record. Contention-model
/// objectives are not persisted in the record format — `dmx pareto`
/// re-ranks stored records, it cannot re-simulate; use `dmx explore
/// --objectives tail_latency,...` (and its `--json` export) for those.
fn extract(record: &ProfileRecord, objective: Objective) -> Result<u64, String> {
    match objective {
        Objective::Footprint => Ok(record.footprint),
        Objective::Accesses => Ok(record.total_accesses()),
        Objective::EnergyPj => Ok(record.energy_pj),
        Objective::Cycles => Ok(record.cycles),
        Objective::TailLatency | Objective::ContentionStalls => Err(format!(
            "objective `{objective}` is not stored in record files; \
             rank it at exploration time with `dmx explore --objectives {objective},...`"
        )),
        _ => Err(format!(
            "objective `{objective}` is not stored in record files"
        )),
    }
}

fn pareto(rest: &[&String]) -> Result<(), String> {
    let records = load_records(rest)?;
    let objectives = parse_objectives(opt(rest, "--objectives").unwrap_or("footprint,accesses"))?;
    let feasible: Vec<&ProfileRecord> = records.iter().filter(|r| r.feasible()).collect();
    let points: Vec<Vec<u64>> = feasible
        .iter()
        .map(|r| objectives.iter().map(|o| extract(r, *o)).collect())
        .collect::<Result<_, _>>()?;
    let front = dmx_core::pareto_front(&points);
    outln!(
        "{} records, {} feasible, {} Pareto-optimal on ({})",
        records.len(),
        feasible.len(),
        front.len(),
        objectives
            .iter()
            .map(|o| o.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (k, &i) in front.indices.iter().enumerate() {
        let vals: Vec<String> = front.points[k].iter().map(|v| v.to_string()).collect();
        outln!("{:<60} {}", feasible[i].label, vals.join(" "));
    }
    Ok(())
}

fn study(rest: &[&String]) -> Result<(), String> {
    use dmx_core::study::{easyport_study, vtc_study, StudyScale};
    let which = rest.first().ok_or("missing study name")?;
    let seed: u64 = opt(rest, "--seed")
        .unwrap_or("42")
        .parse()
        .map_err(|_| "bad --seed")?;
    let scale = if has_flag(rest, "--paper") {
        StudyScale::Paper
    } else {
        StudyScale::Quick
    };
    let study = match which.as_str() {
        "easyport" => easyport_study(scale, seed),
        "vtc" => vtc_study(scale, seed),
        other => return Err(format!("unknown study `{other}`")),
    };
    let _ = write!(std::io::stdout(), "{}", study.summary.render());
    Ok(())
}

fn report(rest: &[&String]) -> Result<(), String> {
    let records = load_records(rest)?;
    let feasible: Vec<&ProfileRecord> = records.iter().filter(|r| r.feasible()).collect();
    outln!(
        "records: {} total, {} feasible",
        records.len(),
        feasible.len()
    );
    if feasible.is_empty() {
        return Ok(());
    }
    let by = |f: fn(&ProfileRecord) -> u64| {
        let min = feasible.iter().map(|r| f(r)).min().expect("non-empty");
        let max = feasible.iter().map(|r| f(r)).max().expect("non-empty");
        (min, max)
    };
    let (fp_min, fp_max) = by(|r| r.footprint);
    let (ac_min, ac_max) = by(|r| r.total_accesses());
    let (en_min, en_max) = by(|r| r.energy_pj);
    let (cy_min, cy_max) = by(|r| r.cycles);
    outln!(
        "footprint : {fp_min} .. {fp_max} B (x{:.1})",
        fp_max as f64 / fp_min as f64
    );
    outln!(
        "accesses  : {ac_min} .. {ac_max} (x{:.1})",
        ac_max as f64 / ac_min as f64
    );
    outln!(
        "energy    : {en_min} .. {en_max} pJ (x{:.1})",
        en_max as f64 / en_min as f64
    );
    outln!(
        "cycles    : {cy_min} .. {cy_max} (x{:.1})",
        cy_max as f64 / cy_min as f64
    );
    Ok(())
}
