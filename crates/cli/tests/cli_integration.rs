//! Integration tests for the `dmx` binary: every subcommand end to end
//! through real process invocations and real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dmx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmx"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmx-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn gen_profile_explore_pareto_report_pipeline() {
    let dir = tmpdir("pipeline");
    let trace = dir.join("t.trace");
    let records = dir.join("t.prof");
    let csv = dir.join("t.csv");
    let gp = dir.join("t.gp");

    // gen-trace with a small synthetic workload (fast).
    run_ok(
        dmx()
            .args(["gen-trace", "synthetic", "--seed", "3", "--out"])
            .arg(&trace),
    );
    assert!(trace.exists());

    // profile
    let out = run_ok(dmx().arg("profile").arg("--trace").arg(&trace));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot sizes"), "profile output: {text}");

    // explore (+ csv + gnuplot artifacts)
    let out = run_ok(
        dmx()
            .arg("explore")
            .arg("--trace")
            .arg(&trace)
            .arg("--out-records")
            .arg(&records)
            .arg("--csv")
            .arg(&csv)
            .arg("--gnuplot")
            .arg(&gp),
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Pareto-optimal configurations"));
    assert!(records.exists() && csv.exists() && gp.exists());

    // pareto over the written records
    let out = run_ok(
        dmx()
            .arg("pareto")
            .arg("--records")
            .arg(&records)
            .args(["--objectives", "footprint,accesses,energy"]),
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Pareto-optimal on (footprint_bytes, accesses, energy_pj)"));

    // report
    let out = run_ok(dmx().arg("report").arg("--records").arg(&records));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("footprint :"));
    assert!(text.contains("energy    :"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_guided_strategies() {
    let dir = tmpdir("guided");
    let trace = dir.join("t.trace");
    run_ok(
        dmx()
            .args(["gen-trace", "synthetic", "--seed", "3", "--out"])
            .arg(&trace),
    );

    for (strategy, extra) in [
        ("genetic", vec!["--generations", "3", "--population", "16"]),
        ("hillclimb", vec!["--restarts", "3"]),
        ("sample", vec!["--sample-n", "24"]),
    ] {
        let records = dir.join(format!("{strategy}.prof"));
        let json = dir.join(format!("{strategy}.json"));
        let out = run_ok(
            dmx()
                .arg("explore")
                .arg("--trace")
                .arg(&trace)
                .arg("--out-records")
                .arg(&records)
                .arg("--json")
                .arg(&json)
                .args(["--strategy", strategy, "--seed", "7"])
                .args(&extra),
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("strategy `{strategy}`:")),
            "{strategy} stderr: {err}"
        );
        assert!(records.exists());

        // The export is one JSON object wrapping the front plus search
        // statistics (strategy, evaluations, per-island stats).
        let exported = std::fs::read_to_string(&json).unwrap();
        assert!(
            exported.trim_start().starts_with('{'),
            "{strategy}: {exported}"
        );
        assert!(exported.trim_end().ends_with('}'), "{strategy}: {exported}");
        for key in [
            "\"strategy\"",
            "\"evaluations\"",
            "\"front\"",
            "\"islands\"",
        ] {
            assert!(
                exported.contains(key),
                "{strategy} missing {key}: {exported}"
            );
        }
        assert!(
            exported.contains(&format!("\"strategy\": \"{strategy}\"")),
            "{strategy}: {exported}"
        );
        assert!(
            exported.contains("\"label\"") && exported.contains("\"footprint_bytes\""),
            "{strategy} front must be non-empty: {exported}"
        );

        // Guided runs write valid record files the rest of the pipeline
        // consumes (and must have simulated less than the whole space).
        let out = run_ok(dmx().arg("pareto").arg("--records").arg(&records));
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("Pareto-optimal on"), "{strategy}: {text}");
    }

    // Same seed twice ⇒ byte-identical records (determinism end to end).
    let a = dir.join("det-a.prof");
    let b = dir.join("det-b.prof");
    for path in [&a, &b] {
        run_ok(
            dmx()
                .arg("explore")
                .arg("--trace")
                .arg(&trace)
                .arg("--out-records")
                .arg(path)
                .args([
                    "--strategy",
                    "genetic",
                    "--generations",
                    "2",
                    "--seed",
                    "11",
                ]),
        );
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same seed must reproduce identical records"
    );

    let out = dmx()
        .arg("explore")
        .arg("--trace")
        .arg(&trace)
        .arg("--out-records")
        .arg(dir.join("x.prof"))
        .args(["--strategy", "simulated-annealing"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown strategy"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_island_json_carries_island_stats_and_obs_exports() {
    let dir = tmpdir("island-obs");
    let trace = dir.join("t.trace");
    run_ok(
        dmx()
            .args(["gen-trace", "synthetic", "--seed", "3", "--out"])
            .arg(&trace),
    );

    let json = dir.join("t.json");
    let records = dir.join("t.prof");
    let obs_trace = dir.join("t-trace.json");
    let obs_metrics = dir.join("t-metrics.json");
    let out = run_ok(
        dmx()
            .arg("explore")
            .arg("--trace")
            .arg(&trace)
            .arg("--out-records")
            .arg(&records)
            .arg("--json")
            .arg(&json)
            .arg("--obs-trace")
            .arg(&obs_trace)
            .arg("--obs-metrics")
            .arg(&obs_metrics)
            .arg("--progress")
            .args([
                "--strategy",
                "island",
                "--islands",
                "3",
                "--topology",
                "ring",
                "--migrate-every",
                "2",
                "--generations",
                "3",
                "--population",
                "9",
                "--seed",
                "7",
            ]),
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("island 0"), "island stats on stderr: {err}");

    // Per-island statistics ride along in the JSON export, not just stderr.
    let exported = std::fs::read_to_string(&json).unwrap();
    for key in [
        "\"islands\"",
        "\"kind\"",
        "\"migrants_sent\"",
        "\"migrants_received\"",
        "\"last_improved_generation\"",
    ] {
        assert!(exported.contains(key), "missing {key}: {exported}");
    }
    assert!(
        exported.matches("\"island\":").count() >= 3,
        "three islands exported: {exported}"
    );

    // Observability artifacts: Perfetto trace + flat metrics JSON.
    let perfetto = std::fs::read_to_string(&obs_trace).unwrap();
    assert!(perfetto.contains("\"traceEvents\""), "{perfetto}");
    for name in ["island.step", "island.migration", "eval.batch"] {
        assert!(perfetto.contains(name), "trace missing span {name}");
    }
    let metrics = std::fs::read_to_string(&obs_metrics).unwrap();
    for name in [
        "\"search.generations\"",
        "\"search.cache.hits\"",
        "\"island.migrations\"",
        "\"kernel.events\"",
    ] {
        assert!(metrics.contains(name), "metrics missing {name}: {metrics}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scenarios_list_shows_builtin_suites() {
    let out = run_ok(dmx().args(["scenarios", "list"]));
    let text = String::from_utf8_lossy(&out.stdout);
    for suite in ["embedded-mix", "network", "quick"] {
        assert!(
            text.contains(&format!("suite `{suite}`")),
            "missing {suite}: {text}"
        );
    }
    assert!(text.contains("easyport-bursty"));
    assert!(text.contains("dram4m-only"));

    // Filtered listing.
    let out = run_ok(dmx().args(["scenarios", "list", "quick"]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("suite `quick`"));
    assert!(!text.contains("suite `network`"));

    let out = dmx()
        .args(["scenarios", "list", "nope"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown suite"));
}

#[test]
fn explore_suite_exports_robust_and_per_scenario_fronts() {
    let dir = tmpdir("suite");
    let json = dir.join("robust.json");
    let records = dir.join("robust.prof");
    let out = run_ok(dmx().args([
        "explore",
        "--suite",
        "quick",
        "--strategy",
        "genetic",
        "--generations",
        "2",
        "--population",
        "12",
        "--aggregate",
        "worst",
        "--seed",
        "7",
        "--json",
        json.to_str().unwrap(),
        "--out-records",
        records.to_str().unwrap(),
    ]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("robust front"), "{text}");
    assert!(text.contains("per-scenario fronts"), "{text}");

    // The JSON carries the robust front AND one front per scenario.
    let exported = std::fs::read_to_string(&json).unwrap();
    assert!(exported.contains("\"robust_front\""));
    assert!(exported.contains("\"commonality\""));
    assert_eq!(
        exported.matches("\"name\":").count(),
        4,
        "quick suite has four scenario fronts: {exported}"
    );

    // Robust records feed the classic downstream tooling.
    let out = run_ok(dmx().arg("pareto").arg("--records").arg(&records));
    assert!(String::from_utf8_lossy(&out.stdout).contains("Pareto-optimal on"));

    // Determinism: same seed, byte-identical export.
    let json2 = dir.join("robust2.json");
    run_ok(dmx().args([
        "explore",
        "--suite",
        "quick",
        "--strategy",
        "genetic",
        "--generations",
        "2",
        "--population",
        "12",
        "--aggregate",
        "worst",
        "--seed",
        "7",
        "--json",
        json2.to_str().unwrap(),
    ]));
    assert_eq!(
        std::fs::read(&json).unwrap(),
        std::fs::read(&json2).unwrap(),
        "same seed must reproduce identical robust JSON"
    );

    let out = dmx()
        .args(["explore", "--suite", "quick", "--aggregate", "median"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown aggregate"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explore_accepts_objective_lists() {
    let dir = tmpdir("objectives");
    let trace = dir.join("t.trace");
    run_ok(
        dmx()
            .args(["gen-trace", "synthetic", "--seed", "3", "--out"])
            .arg(&trace),
    );
    let records = dir.join("t.prof");
    let json = dir.join("t.json");
    run_ok(
        dmx()
            .arg("explore")
            .arg("--trace")
            .arg(&trace)
            .arg("--out-records")
            .arg(&records)
            .arg("--json")
            .arg(&json)
            .args([
                "--objectives",
                "footprint,energy_pj",
                "--strategy",
                "sample",
                "--sample-n",
                "16",
            ]),
    );
    let exported = std::fs::read_to_string(&json).unwrap();
    assert!(exported.contains("\"energy_pj\""), "{exported}");
    assert!(!exported.contains("\"accesses\""), "{exported}");

    let out = dmx()
        .arg("explore")
        .arg("--trace")
        .arg(&trace)
        .arg("--out-records")
        .arg(dir.join("x.prof"))
        .args(["--objectives", "footprint,bogus"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown objective"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn study_subcommand_prints_summary() {
    let out = run_ok(dmx().args(["study", "vtc", "--seed", "5"]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("=== dmx exploration summary: vtc ==="));
    assert!(text.contains("within Pareto set"));
}

#[test]
fn missing_arguments_fail_with_usage() {
    let out = dmx().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");

    let out = dmx().args(["explore"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace"), "stderr: {err}");
}

#[test]
fn unknown_subcommand_fails() {
    let out = dmx().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn bad_trace_file_is_reported() {
    let dir = tmpdir("bad");
    let bogus = dir.join("bogus.trace");
    std::fs::write(&bogus, "this is not a trace\n").unwrap();
    let out = dmx()
        .arg("profile")
        .arg("--trace")
        .arg(&bogus)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parsing"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_trace_all_kinds() {
    let dir = tmpdir("kinds");
    for kind in ["easyport", "vtc", "synthetic"] {
        let path = dir.join(format!("{kind}.trace"));
        run_ok(
            dmx()
                .args(["gen-trace", kind, "--seed", "1", "--out"])
                .arg(&path),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("dmxtrace v1"), "{kind} trace header");
    }
    std::fs::remove_dir_all(&dir).ok();
}
