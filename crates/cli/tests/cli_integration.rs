//! Integration tests for the `dmx` binary: every subcommand end to end
//! through real process invocations and real files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dmx() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dmx"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dmx-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn gen_profile_explore_pareto_report_pipeline() {
    let dir = tmpdir("pipeline");
    let trace = dir.join("t.trace");
    let records = dir.join("t.prof");
    let csv = dir.join("t.csv");
    let gp = dir.join("t.gp");

    // gen-trace with a small synthetic workload (fast).
    run_ok(
        dmx()
            .args(["gen-trace", "synthetic", "--seed", "3", "--out"])
            .arg(&trace),
    );
    assert!(trace.exists());

    // profile
    let out = run_ok(dmx().arg("profile").arg("--trace").arg(&trace));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot sizes"), "profile output: {text}");

    // explore (+ csv + gnuplot artifacts)
    let out = run_ok(
        dmx()
            .arg("explore")
            .arg("--trace")
            .arg(&trace)
            .arg("--out-records")
            .arg(&records)
            .arg("--csv")
            .arg(&csv)
            .arg("--gnuplot")
            .arg(&gp),
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Pareto-optimal configurations"));
    assert!(records.exists() && csv.exists() && gp.exists());

    // pareto over the written records
    let out = run_ok(
        dmx()
            .arg("pareto")
            .arg("--records")
            .arg(&records)
            .args(["--objectives", "footprint,accesses,energy"]),
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Pareto-optimal on (footprint_bytes, accesses, energy_pj)"));

    // report
    let out = run_ok(dmx().arg("report").arg("--records").arg(&records));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("footprint :"));
    assert!(text.contains("energy    :"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn study_subcommand_prints_summary() {
    let out = run_ok(dmx().args(["study", "vtc", "--seed", "5"]));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("=== dmx exploration summary: vtc ==="));
    assert!(text.contains("within Pareto set"));
}

#[test]
fn missing_arguments_fail_with_usage() {
    let out = dmx().output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "stderr: {err}");

    let out = dmx().args(["explore"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace"), "stderr: {err}");
}

#[test]
fn unknown_subcommand_fails() {
    let out = dmx().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn bad_trace_file_is_reported() {
    let dir = tmpdir("bad");
    let bogus = dir.join("bogus.trace");
    std::fs::write(&bogus, "this is not a trace\n").unwrap();
    let out = dmx()
        .arg("profile")
        .arg("--trace")
        .arg(&bogus)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("parsing"), "stderr: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_trace_all_kinds() {
    let dir = tmpdir("kinds");
    for kind in ["easyport", "vtc", "synthetic"] {
        let path = dir.join(format!("{kind}.trace"));
        run_ok(
            dmx()
                .args(["gen-trace", kind, "--seed", "1", "--out"])
                .arg(&path),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("dmxtrace v1"), "{kind} trace header");
    }
    std::fs::remove_dir_all(&dir).ok();
}
