//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, `Criterion` with
//! `bench_function`/`benchmark_group`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and `black_box`.
//!
//! It is a real (if simple) wall-clock harness, not a no-op: each bench
//! warms up, then runs timed samples and reports min/mean/median per
//! iteration plus derived throughput. There are no plots, no statistical
//! regression analysis, and no `target/criterion` reports. Passing
//! `--test` (as `cargo test --benches` would) runs each bench exactly
//! once to smoke it.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Two-part benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    /// Smoke mode (`--test`): one iteration per bench, no timing loop.
    test_mode: bool,
    /// Substring filter from the command line, as cargo-bench passes it.
    filter: Option<String>,
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.settings.sample_size = n;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, dur: Duration) -> Self {
        self.settings.measurement_time = dur;
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, dur: Duration) -> Self {
        self.settings.warm_up_time = dur;
        self
    }

    /// Applies `cargo bench` command-line conventions: `--test` selects
    /// smoke mode, the first free argument is a name filter. Unknown
    /// flags are ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        let mut peeked: Option<String> = None;
        while let Some(arg) = peeked.take().or_else(|| args.next()) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                // `--bench` is a cargo-injected marker with no value.
                "--bench" => {}
                flag if flag.starts_with('-') => {
                    // Unknown flag (e.g. real-criterion options like
                    // `--save-baseline main`): assume a following non-flag
                    // token is its value, so it is not mistaken for the
                    // bench-name filter. `--flag=value` needs no lookahead.
                    if !flag.contains('=') {
                        if let Some(next) = args.next() {
                            if next.starts_with('-') {
                                peeked = Some(next);
                            }
                        }
                    }
                }
                free => {
                    if self.filter.is_none() {
                        self.filter = Some(free.to_owned());
                    }
                }
            }
        }
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_bench(&id, self.settings, None, self.test_mode, &self.filter, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: self.settings,
            throughput: None,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.warm_up_time = dur;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(
            &id,
            self.settings,
            self.throughput,
            self.criterion.test_mode,
            &self.criterion.filter,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Per-bench timing handle, mirroring `criterion::Bencher`.
pub struct Bencher {
    mode: BencherMode,
    samples_ns: Vec<f64>,
}

enum BencherMode {
    /// Run exactly one iteration, record nothing.
    Smoke,
    /// (warm_up, measurement, sample_size)
    Measure(Duration, Duration, usize),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            BencherMode::Smoke => {
                black_box(routine());
            }
            BencherMode::Measure(warm_up, measurement, sample_size) => {
                // Warm-up: also estimates iterations per sample so each
                // sample runs a comparable batch.
                let warm_start = Instant::now();
                let mut warm_iters: u64 = 0;
                while warm_start.elapsed() < warm_up {
                    black_box(routine());
                    warm_iters += 1;
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                let budget = measurement.as_secs_f64() / sample_size as f64;
                let batch = ((budget / per_iter).round() as u64).max(1);

                self.samples_ns.reserve(sample_size);
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(routine());
                    }
                    let ns = start.elapsed().as_secs_f64() * 1e9 / batch as f64;
                    self.samples_ns.push(ns);
                }
            }
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

fn run_bench<F>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    test_mode: bool,
    filter: &Option<String>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }

    if test_mode {
        let mut b = Bencher {
            mode: BencherMode::Smoke,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        println!("Testing {id} ... ok");
        return;
    }

    println!("Benchmarking {id}");
    let mut b = Bencher {
        mode: BencherMode::Measure(
            settings.warm_up_time,
            settings.measurement_time,
            settings.sample_size,
        ),
        samples_ns: Vec::new(),
    };
    f(&mut b);

    let mut samples = b.samples_ns;
    if samples.is_empty() {
        println!("{id:<50} (no samples — bencher closure never called iter)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    print!(
        "{id:<50} time: [{} {} {}]",
        human_time(min),
        human_time(mean),
        human_time(median)
    );
    match throughput {
        Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
            print!("  thrpt: {}", human_rate(n as f64 / (median / 1e9), "B"));
        }
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: {}", human_rate(n as f64 / (median / 1e9), "elem"));
        }
        None => {}
    }
    println!();
}

/// Mirror of `criterion_group!`: both the simple list form and the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
