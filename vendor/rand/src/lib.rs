//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace. The build environment cannot reach crates.io, so the
//! workspace vendors a small, deterministic stand-in: same trait shapes
//! (`RngCore`, `Rng`, `SeedableRng`, `seq::SliceRandom`), same call sites,
//! different (but high-quality) generator underneath — xoshiro256++ seeded
//! via SplitMix64.
//!
//! Only determinism and statistical adequacy for workload generation are
//! promised; the streams are NOT bit-compatible with the real `rand`
//! crate's `StdRng`.

/// Low-level generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from a range (stand-in for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Span fits u128 for every <=64-bit type, including the
                // full u64/i64 range (2^64), which the scaling below maps
                // to the identity (`draw * 2^64 >> 64 == draw`).
                let span = (high as i128 - low as i128) as u128 + 1;
                // Lemire-style scaling: map a 64-bit draw onto the span.
                let draw = rng.next_u64() as u128;
                let offset = (draw * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Range argument for [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "cannot sample empty range");
                <$t>::sample_inclusive(rng, low, high)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        f64::sample_inclusive(rng, self.start, self.end)
    }
}

/// Types that [`Rng::gen`] can produce (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
