//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Mirror of `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullRange<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty => $from:expr),* $(,)?) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::redundant_closure_call)]
                ($from)(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int! {
    u8 => |r: &mut TestRng| r.next_u64() as u8,
    u16 => |r: &mut TestRng| r.next_u64() as u16,
    u32 => |r: &mut TestRng| r.next_u32(),
    u64 => |r: &mut TestRng| r.next_u64(),
    usize => |r: &mut TestRng| r.next_u64() as usize,
    i8 => |r: &mut TestRng| r.next_u64() as i8,
    i16 => |r: &mut TestRng| r.next_u64() as i16,
    i32 => |r: &mut TestRng| r.next_u32() as i32,
    i64 => |r: &mut TestRng| r.next_u64() as i64,
    isize => |r: &mut TestRng| r.next_u64() as isize,
    bool => |r: &mut TestRng| r.next_u64() & 1 == 1,
}
