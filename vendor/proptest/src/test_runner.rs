//! Deterministic case runner: the engine behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirror of `proptest::test_runner::Config` (exposed in the prelude as
/// `ProptestConfig`). Only the fields this workspace touches are present.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Base RNG seed. The effective per-test seed also hashes in the test
    /// name so distinct tests draw distinct streams. Overridden by the
    /// `PROPTEST_SEED` environment variable when set.
    pub rng_seed: u64,
    /// Unused; kept so `..Config::default()` spreads keep working if real
    /// proptest is swapped back in.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        // As in real proptest, PROPTEST_CASES feeds the *default*; a test
        // that sets `cases:` explicitly in its ProptestConfig wins over
        // the environment.
        let cases =
            env_u64("PROPTEST_CASES").map_or(256, |c| c.clamp(1, u64::from(u32::MAX)) as u32);
        Self {
            cases,
            rng_seed: 0xD47E_2006_0000_0000,
            max_shrink_iters: 0,
        }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Runs `config.cases` generated cases of `body`. On panic, a note naming
/// the failing case index and replay seed is printed before the panic
/// propagates to the test harness.
pub fn run_cases(config: &Config, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    let base_seed = env_u64("PROPTEST_SEED").unwrap_or(config.rng_seed);
    let cases = config.cases.max(1);
    let test_seed = base_seed ^ fnv1a(test_name.as_bytes());

    for case in 0..cases {
        let case_seed =
            test_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1));
        let guard = FailureNote {
            test_name,
            case,
            case_seed,
            cases,
        };
        let mut rng = TestRng::from_seed(case_seed);
        body(&mut rng);
        std::mem::forget(guard);
    }
}

struct FailureNote<'a> {
    test_name: &'a str,
    case: u32,
    case_seed: u64,
    cases: u32,
}

impl Drop for FailureNote<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: {} failed at case {}/{} (replay seed {:#018x}; set PROPTEST_SEED to vary streams)",
                self.test_name, self.case, self.cases, self.case_seed
            );
        }
    }
}
