//! Mirror of `proptest::bool`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Uniform `bool` strategy (`prop::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Mirror of `proptest::bool::weighted`.
pub fn weighted(probability_true: f64) -> Weighted {
    Weighted(probability_true)
}

#[derive(Clone, Copy, Debug)]
pub struct Weighted(f64);

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rand::Rng::gen_bool(rng, self.0)
    }
}
