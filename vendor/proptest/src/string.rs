//! Regex-lite string generation backing the `&str`-as-strategy impl.
//!
//! Supported constructs (the subset this repository's tests use, plus a
//! little slack): literal characters, escaped literals, `\d` `\w` `\s`
//! `\n` `\t`, the Unicode-category escapes `\PC` / `\p{C}`-style
//! "non-control", character classes `[a-z0-9_-]` (ranges + literals,
//! leading `^` negation over printable ASCII), and the quantifiers
//! `{n}` `{m,n}` `{m,}` `*` `+` `?` applied to the preceding atom.
//! Alternation and groups are not supported and panic loudly.

use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Clone, Debug)]
enum Atom {
    /// A fixed set of candidate characters.
    Class(Vec<char>),
    /// Any non-control character (printable ASCII, weighted, plus a few
    /// multi-byte code points to stress UTF-8 handling downstream).
    NonControl,
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Characters a negated or `\PC` atom may draw from beyond ASCII: chosen
/// to exercise 2-, 3-, and 4-byte UTF-8 sequences.
const NON_ASCII_POOL: [char; 8] = ['é', 'ß', 'Ж', 'λ', '→', '漢', 'あ', '🦀'];

fn unsupported(pattern: &str, what: &str) -> ! {
    panic!("proptest shim: unsupported regex construct {what} in pattern {pattern:?}")
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut negated = false;
                if chars.peek() == Some(&'^') {
                    chars.next();
                    negated = true;
                }
                let mut prev: Option<char> = None;
                loop {
                    let Some(c) = chars.next() else {
                        unsupported(pattern, "unterminated character class");
                    };
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            // `prev` was already pushed as a literal; the
                            // range fills in everything after it.
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        }
                        '\\' => {
                            let Some(esc) = chars.next() else {
                                unsupported(pattern, "trailing backslash in class");
                            };
                            prev = Some(esc);
                            set.push(esc);
                        }
                        other => {
                            prev = Some(other);
                            set.push(other);
                        }
                    }
                }
                if negated {
                    let keep: Vec<char> = (' '..='~').filter(|c| !set.contains(c)).collect();
                    if keep.is_empty() {
                        unsupported(pattern, "negated class covering all of printable ASCII");
                    }
                    Atom::Class(keep)
                } else {
                    if set.is_empty() {
                        unsupported(pattern, "empty character class");
                    }
                    Atom::Class(set)
                }
            }
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // `\PC` (and `\pC`-style single-letter forms): treat as
                    // "not control" — the only category the repo uses.
                    match chars.next() {
                        Some('C') => Atom::NonControl,
                        Some('{') => {
                            let mut name = String::new();
                            for c in chars.by_ref() {
                                if c == '}' {
                                    break;
                                }
                                name.push(c);
                            }
                            if name == "C" || name == "Cc" {
                                Atom::NonControl
                            } else {
                                unsupported(pattern, "unicode category other than C")
                            }
                        }
                        _ => unsupported(pattern, "unicode category escape"),
                    }
                }
                Some('d') => Atom::Class(('0'..='9').collect()),
                Some('w') => Atom::Class(
                    ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(['_'])
                        .collect(),
                ),
                Some('s') => Atom::Class(vec![' ', '\t', '\n']),
                Some('n') => Atom::Class(vec!['\n']),
                Some('t') => Atom::Class(vec!['\t']),
                Some(lit) => Atom::Class(vec![lit]),
                None => unsupported(pattern, "trailing backslash"),
            },
            '(' | ')' | '|' => unsupported(pattern, "groups/alternation"),
            '.' => Atom::NonControl,
            lit => Atom::Class(vec![lit]),
        };

        // Optional quantifier.
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    body.push(c);
                }
                let parse_n = |s: &str| -> u32 {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| unsupported(pattern, "non-numeric repetition bound"))
                };
                match body.split_once(',') {
                    None => {
                        let n = parse_n(&body);
                        (n, n)
                    }
                    Some((lo, "")) => (parse_n(lo), parse_n(lo).saturating_add(32)),
                    Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(
            min <= max,
            "bad repetition {{{min},{max}}} in pattern {pattern:?}"
        );
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Class(set) => set[rng.gen_range(0..set.len())],
        Atom::NonControl => {
            // Mostly printable ASCII; occasionally multi-byte.
            if rng.gen_range(0u32..8) == 0 {
                NON_ASCII_POOL[rng.gen_range(0..NON_ASCII_POOL.len())]
            } else {
                char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
            }
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            out.push(gen_char(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn label_pattern_generates_matching_strings() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z0-9@+(),.=-]{1,64}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 64);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "@+(),.=-".contains(c)));
        }
    }

    #[test]
    fn non_control_pattern_has_no_control_chars() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("\\PC{0,300}", &mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn fixed_and_open_repetitions() {
        let mut rng = rng();
        let s = generate_from_pattern("a{3}", &mut rng);
        assert_eq!(s, "aaa");
        for _ in 0..50 {
            let s = generate_from_pattern("[01]{2,}", &mut rng);
            assert!(s.len() >= 2);
            let s = generate_from_pattern("x?y+", &mut rng);
            assert!(s.contains('y'));
        }
    }
}
