//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            keep: f,
        }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap {
            source: self,
            map: f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let candidate = self.source.generate(rng);
            if (self.keep)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 candidates in a row",
            self.whence
        );
    }
}

pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.map)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform or weighted choice between strategies of one value type; the
/// expansion target of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Self { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// `&str` regex-lite strategies: `"[a-z]{1,64}"` and friends.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

/// Owned-pattern form, for parity with proptest's `String` strategies.
impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
