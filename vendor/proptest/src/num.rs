//! Minimal mirror of `proptest::num`: range strategies for the integer
//! primitives are implemented directly on `Range`/`RangeInclusive` in
//! [`crate::strategy`], and full-range strategies come from
//! [`crate::arbitrary::any`]. This module only hosts the `f64`/`f32`
//! namespace constants that proptest users occasionally reach for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

pub mod f64 {
    use super::*;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `f64` in `[0, 1)` — a pragmatic stand-in for proptest's
    /// full-range float strategy, which the workspace does not rely on.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::f64;

        fn generate(&self, rng: &mut TestRng) -> core::primitive::f64 {
            rng.gen::<core::primitive::f64>()
        }
    }
}
