//! Mirror of `proptest::collection`: `vec(strategy, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Mirror of `proptest::collection::SizeRange` (inclusive bounds).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

impl From<core::ops::RangeTo<usize>> for SizeRange {
    fn from(r: core::ops::RangeTo<usize>) -> Self {
        assert!(r.end > 0, "empty size range");
        Self {
            min: 0,
            max: r.end - 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
