//! Offline shim for the subset of the `proptest` API used by this
//! workspace: the `proptest!` test macro, composable strategies
//! (`prop_map`, `prop_oneof!`, tuples, ranges, collections, regex-lite
//! string strategies, `Just`, `any::<T>()`), `ProptestConfig`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case number and seed
//!   (enough to replay deterministically) but is not minimized.
//! * **Deterministic by default.** Each test's RNG stream is derived from
//!   a fixed base seed plus the test's name, so `cargo test` is
//!   reproducible run-to-run and machine-to-machine. Set `PROPTEST_SEED`
//!   to explore a different stream, and `PROPTEST_CASES` to change the
//!   default case
//!   counts globally.
//! * Only the regex constructs this repo's tests use are supported by the
//!   string strategy (character classes, `\PC`, `\d`/`\w`/`\s`, and
//!   `{m,n}` style repetition).

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::{bool, collection, num, strategy, string};
    }
}

/// Entry point macro mirroring `proptest::proptest!`.
///
/// Supports the forms used in this repository: an optional inner
/// `#![proptest_config(expr)]` attribute followed by any number of
/// `#[test]` functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)+
                    $body
                });
            }
        )*
    };

    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice between strategies producing the same value type.
/// Weighted arms (`weight => strategy`) are accepted and the weights are
/// honored.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Real proptest rejects the case and draws a fresh one; without a
/// rejection channel the shim simply skips the remainder of the case body,
/// which preserves the semantics the tests rely on (assumption-violating
/// inputs are never asserted on).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}
